"""The what-if capacity planner: search deployments against SLOs and cost.

:func:`plan_capacity` answers the question a fleet owner actually asks:
*given this traffic forecast, these tenant SLOs, and this fault model,
which deployment should I buy?*  The search runs in three phases:

1. **bound** — every grid candidate gets an analytic capacity/attainment
   upper bound (:mod:`repro.capacity.bounds`).  Candidates whose *bound*
   is already below the SLO target are provably infeasible and are pruned
   before any simulation.
2. **simulate** — survivors are served for real through the shared
   candidate-evaluation path (:mod:`repro.serve.candidates`): a healthy
   run, and — when a fault model is given — a degraded run with the
   chip-level fault schedule mapped onto serving replicas through each
   candidate's topology (a crashed chip takes its whole pipeline group or
   all its co-resident partitions down with it).  Candidates fan out over
   worker processes via :func:`~repro.perf.parallel.parallel_map`; every
   per-layer schedule goes through the plan cache, persisted on disk by
   default so repeated what-ifs start warm.
3. **rank** — feasible candidates (healthy worst-tenant attainment meets
   the target) by cost per million good requests, then infeasible ones by
   how close they come.  If pruning left no feasible survivor, a *rescue
   pass* simulates the pruned candidates too — so the ranking never
   differs from what exhaustive evaluation would have produced (the
   determinism tests hold this to account).

The report is a plain dict; :func:`report_to_json` serializes the stable
part byte-identically across reruns and ``--jobs`` settings (volatile
cache counters are text-report only).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.capacity.bounds import attainment_bound, candidate_capacity_rps
from repro.capacity.forecast import ForecastSpec
from repro.capacity.grid import Candidate, CandidateGrid
from repro.errors import ConfigError
from repro.perf.cache import schedule_cache
from repro.perf.parallel import parallel_map

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FaultModel",
    "plan_capacity",
    "render_report",
    "report_to_json",
]

#: planner-local plan-cache directory (created on demand, safe to delete)
DEFAULT_CACHE_DIR = ".repro-plan-cache"


@dataclass(frozen=True)
class FaultModel:
    """Chip-level chaos one planning run charges every candidate with.

    ``crashes``/``slowdowns`` draw a deterministic
    :class:`~repro.resilience.faults.FaultSchedule` against the
    candidate's *physical chips* (clamped to the fleet size — a 1-chip
    fleet losing its only chip is a legitimate, catastrophic outcome the
    ranking should see).  ``sdc_windows`` adds silent-data-corruption
    windows; whether corruptions are caught is the planner's ``abft``
    switch, not the fault model's.
    """

    seed: int = 1
    crashes: int = 1
    slowdowns: int = 0
    sdc_windows: int = 0
    sdc_per_batch: float = 1.0

    def __post_init__(self) -> None:
        for label in ("seed", "crashes", "slowdowns", "sdc_windows"):
            value = getattr(self, label)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"fault model {label} must be an int, got {value!r}"
                )
        for label in ("crashes", "slowdowns", "sdc_windows"):
            if getattr(self, label) < 0:
                raise ConfigError(
                    f"fault model {label} must be >= 0, got {getattr(self, label)!r}"
                )
        if not 0 < self.sdc_per_batch <= 1:
            raise ConfigError(
                f"sdc_per_batch must be in (0, 1], got {self.sdc_per_batch!r}"
            )

    @property
    def any_faults(self) -> bool:
        return bool(self.crashes or self.slowdowns or self.sdc_windows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crashes": self.crashes,
            "slowdowns": self.slowdowns,
            "sdc_windows": self.sdc_windows,
            "sdc_per_batch": round(self.sdc_per_batch, 6),
        }


def _round(value: float) -> float:
    return round(value, 6)


def _worst_tenant_attainment(summary: Dict[str, object]) -> float:
    """Min per-tenant deadline-hit rate — the SLO the weakest tenant sees."""
    per_tenant = summary.get("per_tenant") or {}
    rates = [
        group["deadline_hit_rate"]
        for group in per_tenant.values()
        if group["offered"]
    ]
    if not rates:
        return summary["deadline_hit_rate"]
    return min(rates)


def _trim(summary: Dict[str, object]) -> Dict[str, object]:
    """The stable, compact slice of an engine summary the report keeps."""
    out: Dict[str, object] = {
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed": summary["shed"],
        "deadline_met": summary["deadline_met"],
        "deadline_hit_rate": _round(summary["deadline_hit_rate"]),
        "attainment": _round(_worst_tenant_attainment(summary)),
        "goodput_rps": _round(summary["goodput_rps"]),
        "p95_ms": summary["latency_ms"]["p95"],
        "utilization": _round(summary["utilization"]),
        "makespan_s": _round(summary["makespan_s"]),
        "mean_batch_size": _round(summary["mean_batch_size"]),
    }
    integrity = summary.get("integrity")
    if integrity is not None:
        escaped = integrity["escaped_requests"]
        offered = summary["offered"]
        out["escaped_requests"] = escaped
        out["verified_attainment"] = _round(
            max(0.0, (summary["deadline_met"] - escaped) / offered)
            if offered
            else 0.0
        )
    return out


def _candidate_groups(candidate: Candidate, plan_policy: str, link_gbs: float):
    """The single replica group one candidate presents to the engine."""
    if candidate.strategy in ("pipeline", "data-parallel"):
        from repro.cluster.link import LinkSpec
        from repro.cluster.replica import PipelinedReplica

        shard = PipelinedReplica(
            candidate.config,
            candidate.group,
            link=LinkSpec(bandwidth_gbs=link_gbs),
            strategy=candidate.strategy,
            policy=plan_policy,
        )
        return [(candidate.config, candidate.n_replicas, shard)]
    return [(candidate.slot_config, candidate.n_replicas)]


def _mapped_faults(candidate: Candidate, fault_model: FaultModel, duration_s: float):
    """Draw the chip-level schedule and map it onto serving replicas."""
    from repro.resilience.faults import FaultSchedule
    from repro.serve.failover import ReplicaFault
    from repro.serve.verified import SDCFault

    crashes = min(fault_model.crashes, candidate.n_chips)
    schedule = FaultSchedule.seeded(
        fault_model.seed,
        n_replicas=candidate.n_chips,
        duration_s=duration_s,
        crashes=crashes,
        slowdowns=fault_model.slowdowns,
    )
    crash_at: Dict[int, float] = {}
    slows: List[ReplicaFault] = []
    for fault in schedule.replica_faults:
        for rid in candidate.chip_replica(fault.replica):
            if fault.kind == "crash":
                if rid not in crash_at or fault.time_s < crash_at[rid]:
                    crash_at[rid] = fault.time_s
            else:
                slows.append(
                    ReplicaFault(
                        "slow",
                        rid,
                        fault.time_s,
                        factor=fault.factor,
                        duration_s=fault.duration_s,
                    )
                )
    faults = [
        ReplicaFault("crash", rid, t) for rid, t in sorted(crash_at.items())
    ] + slows

    sdc: List[SDCFault] = []
    rng = random.Random(fault_model.seed + 7919)
    for i in range(fault_model.sdc_windows):
        chip = rng.randrange(candidate.n_chips)
        start = (0.2 + 0.6 * rng.random()) * duration_s
        rid = candidate.chip_replica(chip)[0]
        sdc.append(
            SDCFault(
                replica=rid,
                time_s=start,
                duration_s=0.1 * duration_s,
                per_batch=fault_model.sdc_per_batch,
                seed=fault_model.seed + i,
            )
        )
    return faults, sdc


#: per-worker-process memo: forecasts are tiny, request lists are not —
#: regenerate once per process instead of pickling them per work item
_REQUEST_MEMO: Dict[ForecastSpec, list] = {}


def _forecast_requests(forecast: ForecastSpec):
    requests = _REQUEST_MEMO.get(forecast)
    if requests is None:
        if len(_REQUEST_MEMO) > 4:
            _REQUEST_MEMO.clear()
        requests = _REQUEST_MEMO[forecast] = forecast.requests()
    return requests


def _evaluate_payload(
    payload: Tuple[
        Candidate, ForecastSpec, Optional[FaultModel], bool, str, float
    ],
) -> Tuple[Dict[str, object], Dict[str, int]]:
    """Worker: one candidate's healthy (and degraded) simulation.

    Returns ``(partial entry, plan-cache counter delta)`` — the delta lets
    the parent aggregate cache effectiveness across worker processes
    (fork-isolated counters never flow back on their own).
    """
    from repro.serve.batcher import BatchPolicy
    from repro.serve.candidates import evaluate_candidate
    from repro.serve.verified import VerificationPolicy

    candidate, forecast, fault_model, abft, plan_policy, link_gbs = payload
    before = schedule_cache.stats()
    requests = _forecast_requests(forecast)
    batch_policy = BatchPolicy(max_batch=candidate.max_batch)
    groups = _candidate_groups(candidate, plan_policy, link_gbs)
    verification = VerificationPolicy(enabled=True) if abft else None

    healthy = evaluate_candidate(
        groups,
        requests,
        forecast.duration_s,
        batch_policy=batch_policy,
        plan_policy=plan_policy,
        candidate=candidate.name,
        verification=verification,
    )

    degraded = None
    if fault_model is not None and fault_model.any_faults:
        faults, sdc = _mapped_faults(candidate, fault_model, forecast.duration_s)
        degraded_verification = verification
        if sdc and degraded_verification is None:
            # an unguarded tier still *experiences* the SDC windows; the
            # disabled policy makes every corruption escape and be counted
            degraded_verification = VerificationPolicy(enabled=False)
        degraded = evaluate_candidate(
            groups,
            requests,
            forecast.duration_s,
            batch_policy=batch_policy,
            plan_policy=plan_policy,
            candidate=candidate.name,
            faults=faults,
            sdc_faults=sdc,
            verification=degraded_verification,
        )

    after = schedule_cache.stats()
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "disk_hits": after.disk_hits - before.disk_hits,
        "disk_writes": after.disk_writes - before.disk_writes,
    }
    entry: Dict[str, object] = {
        "healthy": _trim(healthy),
        "degraded": _trim(degraded) if degraded is not None else None,
    }
    return entry, delta


def _cost_per_mreq(candidate: Candidate, healthy: Dict[str, object]) -> float:
    """Chip-cost per million requests served within their SLO.

    Chip-seconds (fleet weight x healthy makespan, the equal-budget
    currency of :mod:`repro.tenancy`) divided by good requests, scaled to
    a million — the metric the ranking minimizes for feasible candidates.
    """
    chip_seconds = candidate.fleet_weight * healthy["makespan_s"]
    return 1e6 * chip_seconds / max(healthy["deadline_met"], 1)


def plan_capacity(
    grid: CandidateGrid,
    forecast: ForecastSpec,
    slo_target: float = 0.95,
    fault_model: Optional[FaultModel] = None,
    abft: bool = False,
    plan_policy: str = "adaptive-2",
    jobs: Optional[int] = None,
    prune: bool = True,
    persist_cache: bool = True,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, object]:
    """Search the grid against the forecast; return the ranked report.

    ``persist_cache`` (default on) points the process-wide schedule cache
    at an on-disk directory — ``cache_dir``, else ``$REPRO_PLAN_CACHE_DIR``,
    else ``.repro-plan-cache`` under the current directory — so repeated
    what-ifs and the benchmark's rerun gate start warm.  ``progress`` is
    called as ``progress(done, total)`` after each simulated candidate.
    The returned dict's ``"cache"`` section is volatile (counters differ
    across ``--jobs`` and warm/cold disk); :func:`report_to_json` strips
    it so the ranked JSON is byte-stable.
    """
    if not 0 < slo_target <= 1:
        raise ConfigError(f"slo_target must be in (0, 1], got {slo_target!r}")
    if persist_cache:
        directory = (
            cache_dir
            or os.environ.get("REPRO_PLAN_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )
        schedule_cache.configure(persist_dir=directory)
    stats_before = schedule_cache.stats()

    candidates = grid.enumerate()
    requests = forecast.requests()
    n_requests = len(requests)

    # -- phase 1: analytic bounds -----------------------------------------
    coster_memo: Dict[object, object] = {}
    bounds: Dict[str, Dict[str, float]] = {}
    for candidate in candidates:
        capacity = candidate_capacity_rps(
            candidate,
            forecast,
            plan_policy=plan_policy,
            link_gbs=grid.link_gbs,
            coster_memo=coster_memo,
        )
        bounds[candidate.name] = {
            "capacity_rps": _round(capacity),
            "attainment": _round(
                attainment_bound(
                    capacity, n_requests, forecast.duration_s, forecast.max_slo_s
                )
            ),
        }

    if prune:
        survivors = [
            c for c in candidates if bounds[c.name]["attainment"] >= slo_target
        ]
        pruned = [
            c for c in candidates if bounds[c.name]["attainment"] < slo_target
        ]
    else:
        survivors, pruned = list(candidates), []

    # -- phase 2: simulate ------------------------------------------------
    def simulate(batch: List[Candidate]) -> List:
        payloads = [
            (c, forecast, fault_model, abft, plan_policy, grid.link_gbs)
            for c in batch
        ]
        return parallel_map(
            _evaluate_payload, payloads, jobs=jobs, progress=progress
        )

    evaluated: Dict[str, Dict[str, object]] = {}
    cache_delta = {"hits": 0, "misses": 0, "disk_hits": 0, "disk_writes": 0}

    def absorb(batch: List[Candidate], results: List) -> None:
        for candidate, result in zip(batch, results):
            if result is None:  # user skipped / worker died — leave unranked
                continue
            entry, delta = result
            for key in cache_delta:
                cache_delta[key] += delta[key]
            evaluated[candidate.name] = entry

    absorb(survivors, simulate(survivors))

    def is_feasible(name: str) -> bool:
        return evaluated[name]["healthy"]["attainment"] >= slo_target

    rescued = False
    if prune and pruned and not any(is_feasible(n) for n in evaluated):
        # nothing met the SLO: the exhaustive ranking would fall back to
        # "closest to target", which a pruned candidate could win — so the
        # bound no longer saves anything, simulate the remainder too
        rescued = True
        absorb(pruned, simulate(pruned))

    # -- phase 3: rank ----------------------------------------------------
    from repro.serve.candidates import rank_candidates

    deployments: Dict[str, Dict[str, object]] = {}
    for candidate in candidates:
        name = candidate.name
        entry: Dict[str, object] = {
            "candidate": candidate.to_dict(),
            "bound": bounds[name],
            "pruned": name not in evaluated,
        }
        simulated = evaluated.get(name)
        if simulated is not None:
            healthy = simulated["healthy"]
            entry["healthy"] = healthy
            entry["degraded"] = simulated["degraded"]
            entry["feasible"] = healthy["attainment"] >= slo_target
            entry["cost_per_mreq"] = _round(_cost_per_mreq(candidate, healthy))
        deployments[name] = entry

    feasible = {n: e for n, e in deployments.items() if e.get("feasible")}
    near = {
        n: e
        for n, e in deployments.items()
        if not e["pruned"] and not e.get("feasible")
    }
    unranked = {n: e for n, e in deployments.items() if e["pruned"]}
    ranking = (
        rank_candidates(
            feasible,
            key=lambda e: (
                e["cost_per_mreq"],
                -(e["degraded"] or e["healthy"])["attainment"],
            ),
        )
        + rank_candidates(
            near,
            key=lambda e: (
                -e["healthy"]["attainment"],
                e["cost_per_mreq"],
            ),
        )
        + rank_candidates(unranked, key=lambda e: (-e["bound"]["attainment"],))
    )

    stats_after = schedule_cache.stats()
    report: Dict[str, object] = {
        "forecast": dict(forecast.to_dict(), requests=n_requests),
        "grid": grid.to_dict(),
        "slo_target": _round(slo_target),
        "abft": abft,
        "fault_model": fault_model.to_dict() if fault_model else None,
        "plan_policy": plan_policy,
        "search": {
            "candidates": len(candidates),
            "pruned": len(candidates) - len(evaluated),
            "simulated": len(evaluated),
            "rescued": rescued,
            "feasible": len(feasible),
        },
        "deployments": deployments,
        "ranking": ranking,
        "winner": ranking[0],
        # volatile: counters depend on --jobs and warm/cold disk state;
        # report_to_json strips this section to keep the ranking byte-stable
        "cache": {
            "workers": dict(cache_delta),
            "planner_hits": stats_after.hits - stats_before.hits,
            "planner_misses": stats_after.misses - stats_before.misses,
            "disk_hits": stats_after.disk_hits - stats_before.disk_hits,
            "disk_writes": stats_after.disk_writes - stats_before.disk_writes,
            "persist_dir": stats_after.persist_dir,
        },
    }
    return report


def report_to_json(report: Dict[str, object]) -> str:
    """Serialize the stable slice of a planner report, byte-reproducibly.

    Same grid + forecast + knobs → the identical byte string, independent
    of ``--jobs``, cache warmth, or rerun count: the volatile ``"cache"``
    section is excluded (it lives in :func:`render_report` instead).
    """
    payload = {k: v for k, v in report.items() if k != "cache"}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_report(report: Dict[str, object], top: int = 0) -> str:
    """Human-readable planner verdict (includes the volatile cache stats)."""
    from repro.analysis.report import format_table

    search = report["search"]
    forecast = report["forecast"]
    lines = [
        f"capacity plan: {search['candidates']} candidates, "
        f"{search['pruned']} pruned analytically, "
        f"{search['simulated']} simulated"
        + (" (rescue pass ran)" if search["rescued"] else ""),
        f"forecast: {forecast['kind']} {forecast['rate_rps']:g} req/s "
        f"x {forecast['duration_s']:g} s, {forecast['requests']} requests, "
        f"SLO target {report['slo_target']:.1%}"
        + (", ABFT on" if report["abft"] else ""),
        "",
    ]
    rows = []
    names = report["ranking"][: top or None]
    for name in names:
        entry = report["deployments"][name]
        healthy = entry.get("healthy")
        degraded = entry.get("degraded")
        rows.append(
            [
                name,
                f"{entry['candidate']['fleet_weight']:g}",
                f"{entry['bound']['attainment']:.1%}",
                f"{healthy['attainment']:.1%}" if healthy else "pruned",
                f"{degraded['attainment']:.1%}" if degraded else "-",
                f"{entry['cost_per_mreq']:.2f}" if healthy else "-",
                "yes" if entry.get("feasible") else "no",
            ]
        )
    lines.append(
        format_table(
            ["deployment", "weight", "bound", "attained", "degraded",
             "cost/Mreq", "feasible"],
            rows,
        )
    )
    lines.append("")
    lines.append(f"winner: {report['winner']}")
    cache = report["cache"]
    workers = cache["workers"]
    lookups = workers["hits"] + workers["misses"]
    rate = workers["hits"] / lookups if lookups else 0.0
    lines.append(
        f"plan cache: {workers['hits']} hits / {workers['misses']} misses "
        f"({rate:.1%}) in workers, "
        f"{cache['disk_hits'] + workers['disk_hits']} disk hits, "
        f"{cache['disk_writes'] + workers['disk_writes']} disk writes"
        + (
            f", dir {cache['persist_dir']}"
            if cache["persist_dir"]
            else " (persistence off)"
        )
    )
    return "\n".join(lines)
