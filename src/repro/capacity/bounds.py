"""Analytic capacity bounds: the planner's pruning oracle.

Simulating every grid point is the expensive part of a what-if search, so
the planner first scores each candidate with a cheap *optimistic* bound
and only simulates the ones the bound cannot rule out.  The contract that
makes pruning safe is one-sided: the bound must never be *below* what the
simulator could achieve.  It is built from best-case ingredients only —

* per-replica service rate: the best (highest-throughput) batch size the
  candidate's batching cap allows, probed at powers of two, costed through
  :func:`~repro.adaptive.batch.plan_batch` via the shared coster (so the
  bound itself warms the schedule cache the simulation reuses);
* the traffic's expected network mix (tenant weights folded into
  per-network shares) — a fluid-limit average with no queueing, no
  batch-formation waits, no head-of-line blocking;
* completion slack: every request arriving before ``duration_s`` may
  finish up to the most lenient SLO later, so the bound credits
  ``capacity x (duration + max_slo)`` completions.

A candidate whose *bound* on SLO attainment is already below the target
cannot meet it in simulation (the simulator adds queueing and batching
delay on top, never removes work).  The planner prunes exactly on that
predicate — see ``docs/capacity.md`` for the proof obligation and the
regression test that holds it to account.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.capacity.forecast import ForecastSpec
from repro.capacity.grid import Candidate
from repro.serve.batcher import BatchCoster

__all__ = [
    "attainment_bound",
    "candidate_capacity_rps",
    "mix_image_seconds",
    "probe_batches",
]


def probe_batches(max_batch: int) -> List[int]:
    """Batch sizes the bound probes: powers of two up to the cap, plus it."""
    probes = [1]
    b = 2
    while b < max_batch:
        probes.append(b)
        b *= 2
    if max_batch > 1:
        probes.append(max_batch)
    return probes


def mix_image_seconds(
    coster, shares: Sequence[Tuple[str, float]], batch_size: int
) -> float:
    """Expected per-image service time over a traffic mix at one batch size."""
    return sum(
        share * coster.image_seconds(network, batch_size)
        for network, share in shares
    )


def candidate_capacity_rps(
    candidate: Candidate,
    forecast: ForecastSpec,
    plan_policy: str = "adaptive-2",
    link_gbs: float = 25.0,
    coster_memo: Optional[Dict[AcceleratorConfig, BatchCoster]] = None,
) -> float:
    """Optimistic sustainable throughput (req/s) of one candidate.

    Per-replica service rate at the best probed batch size, times the
    replica count.  Sharded strategies cost through the same
    :class:`~repro.cluster.replica.PipelinedReplica` model the simulation
    uses, so the bound and the simulator agree on what a shard *can* do —
    they differ only in the queueing the bound ignores.
    """
    shares = forecast.network_shares()
    if candidate.strategy in ("pipeline", "data-parallel"):
        from repro.cluster.link import LinkSpec
        from repro.cluster.replica import PipelinedReplica

        coster = PipelinedReplica(
            candidate.config,
            candidate.group,
            link=LinkSpec(bandwidth_gbs=link_gbs),
            strategy=candidate.strategy,
            policy=plan_policy,
        )
    else:
        config = candidate.slot_config
        if coster_memo is None:
            coster_memo = {}
        coster = coster_memo.get(config)
        if coster is None:
            coster = coster_memo[config] = BatchCoster(config, policy=plan_policy)
    best_image_s = min(
        mix_image_seconds(coster, shares, b)
        for b in probe_batches(candidate.max_batch)
    )
    return candidate.n_replicas / best_image_s


def attainment_bound(
    capacity_rps: float, n_requests: int, duration_s: float, max_slo_s: float
) -> float:
    """Upper bound on deadline-hit rate given offered load and capacity.

    At most ``capacity x (duration + slack)`` requests can complete within
    deadline; dividing by the offered count and clamping to 1 gives a
    fluid-limit attainment no schedule can beat.
    """
    if n_requests <= 0:
        return 1.0
    return min(1.0, capacity_rps * (duration_s + max_slo_s) / n_requests)
