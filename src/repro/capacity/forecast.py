"""Traffic forecasts: the demand side of a capacity plan.

A :class:`ForecastSpec` is a small, frozen, picklable description of the
traffic a deployment must absorb — tenant mixes with per-tenant SLOs plus
an arrival shape (steady Poisson or a diurnal day/night cycle with flash
crowds).  :meth:`ForecastSpec.requests` materializes it into the concrete
request list through the seeded generators in :mod:`repro.serve.workload`,
so the same spec always yields the identical workload.

The spec-not-requests split matters for the planner's process fan-out: a
worker evaluating one candidate receives the few-hundred-byte spec and
regenerates the request list locally (memoized per process), instead of
every work item pickling tens of thousands of :class:`Request` records
across the pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.serve.workload import (
    MixedTenantSpec,
    Request,
    mixed_arrivals,
    mixed_diurnal_arrivals,
    parse_tenant_mix,
)

__all__ = ["FORECAST_KINDS", "ForecastSpec"]

FORECAST_KINDS = ("steady", "diurnal")


@dataclass(frozen=True)
class ForecastSpec:
    """One deterministic traffic forecast.

    ``kind="steady"`` is Poisson at ``rate`` for ``duration_s``;
    ``kind="diurnal"`` sweeps the sinusoidal day/night cycle from ``rate``
    (trough) to ``peak_rate`` (crest) over ``duration_s`` simulated
    seconds with ``day_s`` seconds per day, plus explicit flash-crowd
    windows ``(start_s, duration_s, factor)``.  Tenants carry their own
    network mixes and SLOs (:class:`~repro.serve.workload.MixedTenantSpec`).
    """

    tenants: Tuple[MixedTenantSpec, ...]
    rate: float
    duration_s: float
    kind: str = "steady"
    peak_rate: float = 0.0
    day_s: float = 86400.0
    flash_crowds: Tuple[Tuple[float, float, float], ...] = field(
        default_factory=tuple
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FORECAST_KINDS:
            raise ConfigError(
                f"unknown forecast kind {self.kind!r}; choose from {FORECAST_KINDS}"
            )
        if not self.tenants:
            raise ConfigError("forecast needs at least one tenant")
        if self.rate <= 0:
            raise ConfigError(f"forecast rate must be positive, got {self.rate!r}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"forecast duration must be positive, got {self.duration_s!r}"
            )
        if self.kind == "diurnal":
            if self.peak_rate < self.rate:
                raise ConfigError(
                    f"diurnal forecast needs peak_rate >= rate, got "
                    f"{self.peak_rate!r} < {self.rate!r}"
                )
            if self.day_s <= 0:
                raise ConfigError(
                    f"forecast day_s must be positive, got {self.day_s!r}"
                )

    @classmethod
    def parse(
        cls,
        mix: str,
        rate: float,
        duration_s: float,
        kind: str = "steady",
        peak_rate: float = 0.0,
        day_s: float = 86400.0,
        slo_ms: float = 250.0,
        seed: int = 0,
    ) -> "ForecastSpec":
        """Build a spec from the CLI tenant-mix grammar (see ``parse_tenant_mix``)."""
        return cls(
            tenants=tuple(parse_tenant_mix(mix, slo_ms=slo_ms)),
            rate=rate,
            duration_s=duration_s,
            kind=kind,
            peak_rate=peak_rate,
            day_s=day_s,
            seed=seed,
        )

    # -- demand-side aggregates the bounds need ---------------------------

    @property
    def max_slo_s(self) -> float:
        """The most lenient tenant deadline (the bound's completion slack)."""
        return max(t.slo_ms for t in self.tenants) / 1e3

    def network_shares(self) -> List[Tuple[str, float]]:
        """Expected fraction of traffic per network, tenant mixes folded in.

        Sorted by network name; shares sum to 1.  This is what the
        analytic capacity bound weights per-network service times by.
        """
        tenant_total = sum(t.weight for t in self.tenants)
        shares: Dict[str, float] = {}
        for tenant in self.tenants:
            mix_total = sum(share for _, share in tenant.mix)
            for network, share in tenant.mix:
                shares[network] = shares.get(network, 0.0) + (
                    tenant.weight / tenant_total
                ) * (share / mix_total)
        return sorted(shares.items())

    def requests(self) -> List[Request]:
        """Materialize the concrete, deterministic request list."""
        if self.kind == "steady":
            return mixed_arrivals(
                self.rate, self.duration_s, list(self.tenants), seed=self.seed
            )
        return mixed_diurnal_arrivals(
            self.rate,
            self.peak_rate,
            self.duration_s / self.day_s,
            list(self.tenants),
            seed=self.seed,
            day_s=self.day_s,
            flash_crowds=self.flash_crowds,
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "rate_rps": round(self.rate, 6),
            "duration_s": round(self.duration_s, 6),
            "seed": self.seed,
            "tenants": [
                {
                    "name": t.name,
                    "mix": [[n, round(s, 6)] for n, s in t.mix],
                    "weight": round(t.weight, 6),
                    "slo_ms": round(t.slo_ms, 6),
                }
                for t in self.tenants
            ],
        }
        if self.kind == "diurnal":
            out["peak_rate_rps"] = round(self.peak_rate, 6)
            out["day_s"] = round(self.day_s, 6)
            if self.flash_crowds:
                out["flash_crowds"] = [
                    [round(v, 6) for v in w] for w in self.flash_crowds
                ]
        return out
