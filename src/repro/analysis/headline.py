"""The paper's headline aggregates, regenerated as one record.

The abstract and Sec. 5 quote a handful of averages; this driver computes
all of them in one pass so EXPERIMENTS.md and the abstract-claims bench
have a single source of truth:

* conv1: partition vs inter (paper 5.8x) and vs intra (paper 2.1x),
  averaged over the 4 networks and both PE configs;
* best single-layer partition-vs-inter speedup (abstract: "4.0x-8.3x for
  some layers");
* whole-network adaptive vs inter on AlexNet (paper 1.83x) and averaged
  (paper 1.43x), at 16-16;
* average PE energy saving of adaptive-2 vs inter (abstract: 28.04%);
* average on-chip memory (buffer) energy saving (abstract: 90.3%);
* average adap-2 vs adap-1 buffer-traffic reduction (Sec 5.3: 90.13%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.adaptive import plan_network
from repro.analysis.metrics import arithmetic_mean
from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.nn.zoo import benchmark_networks
from repro.schemes import make_scheme

__all__ = ["HeadlineNumbers", "headline_numbers", "render_headline"]


@dataclass(frozen=True)
class HeadlineNumbers:
    """Measured values for every quoted aggregate, with the paper's figure."""

    conv1_partition_vs_inter: float  # paper: 5.8
    conv1_partition_vs_intra: float  # paper: 2.1
    best_layer_speedup: float  # paper: 4.0-8.3 band
    alexnet_adaptive_vs_inter: float  # paper: 1.83
    avg_adaptive_vs_inter: float  # paper: 1.43
    avg_pe_energy_saving_pct: float  # paper: 28.04
    avg_memory_energy_saving_pct: float  # paper: 90.3
    avg_adap2_vs_adap1_traffic_pct: float  # paper: 90.13

    PAPER = {
        "conv1_partition_vs_inter": 5.8,
        "conv1_partition_vs_intra": 2.1,
        "best_layer_speedup": 8.3,
        "alexnet_adaptive_vs_inter": 1.83,
        "avg_adaptive_vs_inter": 1.43,
        "avg_pe_energy_saving_pct": 28.04,
        "avg_memory_energy_saving_pct": 90.3,
        "avg_adap2_vs_adap1_traffic_pct": 90.13,
    }


def headline_numbers() -> HeadlineNumbers:
    """Compute every quoted aggregate from the current model."""
    nets = benchmark_networks()
    configs = (CONFIG_16_16, CONFIG_32_32)

    conv1_vs_inter: List[float] = []
    conv1_vs_intra: List[float] = []
    best_layer = 0.0
    for config in configs:
        for net in nets:
            ctx = net.conv1()
            inter = make_scheme("inter").schedule(ctx, config).total_cycles
            intra = make_scheme("intra").schedule(ctx, config).total_cycles
            part = make_scheme("partition").schedule(ctx, config).total_cycles
            conv1_vs_inter.append(inter / part)
            conv1_vs_intra.append(intra / part)
            best_layer = max(best_layer, inter / part)

    runs_inter = {n.name: plan_network(n, CONFIG_16_16, "inter") for n in nets}
    runs_a1 = {n.name: plan_network(n, CONFIG_16_16, "adaptive-1") for n in nets}
    runs_a2 = {n.name: plan_network(n, CONFIG_16_16, "adaptive-2") for n in nets}

    speedups = [
        runs_inter[n.name].total_cycles / runs_a2[n.name].total_cycles
        for n in nets
    ]
    pe_savings = []
    mem_savings = []
    traffic_red = []
    for net in nets:
        e_inter = runs_inter[net.name].energy()
        e_a2 = runs_a2[net.name].energy()
        pe_savings.append(100.0 * (1.0 - e_a2.pe_pj / e_inter.pe_pj))
        mem_savings.append(100.0 * (1.0 - e_a2.buffer_pj / e_inter.buffer_pj))
        traffic_red.append(
            100.0
            * (
                1.0
                - runs_a2[net.name].buffer_accesses
                / runs_a1[net.name].buffer_accesses
            )
        )

    return HeadlineNumbers(
        conv1_partition_vs_inter=arithmetic_mean(conv1_vs_inter),
        conv1_partition_vs_intra=arithmetic_mean(conv1_vs_intra),
        best_layer_speedup=best_layer,
        alexnet_adaptive_vs_inter=(
            runs_inter["alexnet"].total_cycles / runs_a2["alexnet"].total_cycles
        ),
        avg_adaptive_vs_inter=arithmetic_mean(speedups),
        avg_pe_energy_saving_pct=arithmetic_mean(pe_savings),
        avg_memory_energy_saving_pct=arithmetic_mean(mem_savings),
        avg_adap2_vs_adap1_traffic_pct=arithmetic_mean(traffic_red),
    )


def render_headline(measured: HeadlineNumbers) -> str:
    """Paper-vs-measured table of the headline aggregates."""
    from repro.analysis.report import format_table

    rows = []
    labels = {
        "conv1_partition_vs_inter": "conv1: partition vs inter (avg)",
        "conv1_partition_vs_intra": "conv1: partition vs intra (avg)",
        "best_layer_speedup": "best single-layer speedup",
        "alexnet_adaptive_vs_inter": "AlexNet: adaptive vs inter",
        "avg_adaptive_vs_inter": "4-NN avg: adaptive vs inter",
        "avg_pe_energy_saving_pct": "avg PE energy saving (%)",
        "avg_memory_energy_saving_pct": "avg buffer energy saving (%)",
        "avg_adap2_vs_adap1_traffic_pct": "avg adap-2 vs adap-1 traffic (%)",
    }
    for field, label in labels.items():
        rows.append(
            [
                label,
                f"{HeadlineNumbers.PAPER[field]:.2f}",
                f"{getattr(measured, field):.2f}",
            ]
        )
    return "Headline aggregates — paper vs measured\n" + format_table(
        ["metric", "paper", "measured"], rows
    )
