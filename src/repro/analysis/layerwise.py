"""Per-layer breakdown of a network run — the deep-dive report.

The figure-level drivers aggregate whole networks; debugging a plan (or
writing a paper section) needs the layer-resolution view: which scheme ran
where, what bound it (compute vs stream), utilization, traffic, and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.adaptive.search import layer_energy_pj
from repro.arch.energy import EnergyModel
from repro.sim.trace import NetworkRun

__all__ = ["LayerReportRow", "layerwise_rows", "render_layerwise"]


@dataclass(frozen=True)
class LayerReportRow:
    """One layer of a run, fully resolved."""

    layer: str
    scheme: str
    cycles: float
    compute_cycles: int
    stream_cycles: float
    utilization: float
    buffer_words: int
    dram_words: int
    energy_pj: float

    @property
    def bound(self) -> str:
        """What limits the layer: ``"compute"`` or ``"stream"``."""
        return "compute" if self.compute_cycles >= self.stream_cycles else "stream"


def layerwise_rows(run: NetworkRun) -> List[LayerReportRow]:
    """Resolve every layer of ``run`` into a report row."""
    model = EnergyModel(run.config)
    rows = []
    for r in run.layers:
        rows.append(
            LayerReportRow(
                layer=r.layer_name,
                scheme=r.scheme,
                cycles=r.total_cycles,
                compute_cycles=r.operations,
                stream_cycles=r.stream_cycles,
                utilization=r.utilization,
                buffer_words=r.buffer_accesses,
                dram_words=r.dram_words,
                energy_pj=layer_energy_pj(r, model),
            )
        )
    return rows


def render_layerwise(run: NetworkRun, top: int = 0) -> str:
    """Text table of the per-layer breakdown.

    ``top > 0`` keeps only the ``top`` most expensive layers (by cycles),
    useful for the 57-conv GoogLeNet.
    """
    from repro.analysis.report import format_table

    rows = layerwise_rows(run)
    if top > 0:
        rows = sorted(rows, key=lambda r: -r.cycles)[:top]
    body = [
        [
            r.layer,
            r.scheme,
            f"{r.cycles:,.0f}",
            r.bound,
            f"{r.utilization:.0%}",
            f"{r.buffer_words:,d}",
            f"{r.dram_words:,d}",
            f"{r.energy_pj / 1e6:.2f}",
        ]
        for r in rows
    ]
    title = (
        f"{run.network_name} / {run.policy} on {run.config.name}: "
        f"{run.total_cycles:,.0f} cycles total"
    )
    return title + "\n" + format_table(
        [
            "layer",
            "scheme",
            "cycles",
            "bound",
            "util",
            "buffer words",
            "DRAM words",
            "energy (uJ)",
        ],
        body,
    )
