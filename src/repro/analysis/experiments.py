"""Experiment drivers: one function per table/figure of the paper.

Each driver returns plain data rows (dataclasses) so benchmarks can assert
on them and :mod:`repro.analysis.report` can render them.  All drivers are
deterministic and pure-Python — regenerating the full evaluation takes
seconds, not a Verilog simulation farm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive import plan_network
from repro.arch.config import CONFIG_16_16, CONFIG_32_32, AcceleratorConfig
from repro.baselines.cpu import DEFAULT_CPU, CpuModel
from repro.baselines.zhang import ZHANG_7_64, ZhangFpgaModel
from repro.nn.network import Network
from repro.nn.zoo import benchmark_networks, build
from repro.perf.parallel import parallel_map
from repro.schemes import make_scheme
from repro.sim.trace import NetworkRun
from repro.tiling.unroll import unroll_stats

#: the zoo names behind :func:`benchmark_networks`, used to keep parallel
#: work payloads small (workers rebuild the network from its name)
BENCHMARK_NAMES: Tuple[str, ...] = ("alexnet", "googlenet", "vgg", "nin")

__all__ = [
    "Table1Row",
    "table1_scheme_comparison",
    "Fig3Row",
    "Fig7Row",
    "Fig8Row",
    "Fig9Row",
    "Table4Row",
    "Table5Row",
    "Fig10Row",
    "fig3_unrolling",
    "fig7_conv1",
    "fig8_whole_network",
    "fig9_zhang_comparison",
    "table4_cpu_comparison",
    "table5_pe_energy",
    "fig10_buffer_traffic",
    "BOTH_CONFIGS",
    "FIG8_POLICIES",
]

BOTH_CONFIGS: Tuple[AcceleratorConfig, ...] = (CONFIG_16_16, CONFIG_32_32)


# ---------------------------------------------------------------- Table 1


@dataclass(frozen=True)
class Table1Row:
    """One row of the qualitative scheme-suitability matrix."""

    scheme: str
    suited_layers: str
    advantage: str
    #: a witness layer geometry (k, s, Din) where this scheme wins the
    #: per-layer oracle at 16-16 — makes the qualitative row checkable
    witness: Tuple[int, int, int]


def table1_scheme_comparison() -> List[Table1Row]:
    """The paper's Table 1, with a machine-checkable witness per row.

    Each witness (k, s, Din) names a layer geometry on which the row's
    scheme is the oracle winner; the bench asserts those witnesses.
    """
    return [
        Table1Row(
            scheme="inter",
            suited_layers="large #input maps and small kernel",
            advantage="implement easily",
            witness=(3, 1, 256),
        ),
        Table1Row(
            scheme="intra",
            suited_layers="kernel = stride",
            advantage="less memory traffic",
            witness=(4, 4, 8),
        ),
        Table1Row(
            scheme="partition",
            suited_layers="big kernel or small #input maps",
            advantage="both of above",
            witness=(11, 4, 3),
        ),
    ]


FIG7_SCHEMES = ("ideal", "inter", "intra", "partition")
FIG8_POLICIES = ("inter", "intra", "partition", "adaptive-1", "adaptive-2")

#: the first five conv layers Fig. 3 plots, per network
FIG3_LAYERS: Dict[str, Sequence[str]] = {
    "alexnet": ("conv1", "conv2", "conv3", "conv4", "conv5"),
    "googlenet": (
        "conv1/7x7_s2",
        "conv2/3x3",
        "inception_3a/3x3",
        "inception_3a/5x5",
        "inception_3b/3x3",
    ),
}


# ---------------------------------------------------------------- Fig. 3


@dataclass(frozen=True)
class Fig3Row:
    network: str
    layer: str
    raw_bits: int
    unrolled_bits: int

    @property
    def factor(self) -> float:
        return self.unrolled_bits / self.raw_bits


def fig3_unrolling(word_bits: int = 16) -> List[Fig3Row]:
    """Raw vs unrolled data size for the Fig. 3 layers (Eq. 1)."""
    rows: List[Fig3Row] = []
    for net_name, layer_names in FIG3_LAYERS.items():
        net = build(net_name)
        for ctx in net.conv_contexts():
            if ctx.name not in layer_names:
                continue
            stats = unroll_stats(ctx.layer, ctx.in_shape)
            rows.append(
                Fig3Row(
                    network=net_name,
                    layer=ctx.name,
                    raw_bits=stats.raw_bits(word_bits),
                    unrolled_bits=stats.unrolled_bits(word_bits),
                )
            )
    return rows


# ---------------------------------------------------------------- Fig. 7


@dataclass(frozen=True)
class Fig7Row:
    config: str
    network: str
    scheme: str
    cycles: float


def fig7_conv1(
    configs: Sequence[AcceleratorConfig] = BOTH_CONFIGS,
    schemes: Sequence[str] = FIG7_SCHEMES,
) -> List[Fig7Row]:
    """Conv1 execution cycles for every (config, network, scheme)."""
    rows: List[Fig7Row] = []
    for config in configs:
        for net in benchmark_networks():
            ctx = net.conv1()
            for scheme_name in schemes:
                result = make_scheme(scheme_name).schedule(ctx, config)
                rows.append(
                    Fig7Row(config.name, net.name, scheme_name, result.total_cycles)
                )
    return rows


# ---------------------------------------------------------------- Fig. 8


@dataclass(frozen=True)
class Fig8Row:
    config: str
    network: str
    policy: str
    cycles: float


def _fig8_task(payload) -> Fig8Row:
    config, net_name, policy = payload
    run = plan_network(build(net_name), config, policy)
    return Fig8Row(config.name, net_name, policy, run.total_cycles)


def fig8_whole_network(
    configs: Sequence[AcceleratorConfig] = BOTH_CONFIGS,
    policies: Sequence[str] = FIG8_POLICIES,
    jobs: Optional[int] = None,
) -> List[Fig8Row]:
    """Whole-network cycles under each policy (Fig. 8's five series)."""
    payloads = [
        (config, net_name, policy)
        for config in configs
        for net_name in BENCHMARK_NAMES
        for policy in policies
    ]
    return parallel_map(_fig8_task, payloads, jobs=jobs)


# ---------------------------------------------------------------- Fig. 9


@dataclass(frozen=True)
class Fig9Row:
    design: str
    conv1_ms: float
    whole_ms: float


def fig9_zhang_comparison(
    zhang: ZhangFpgaModel = ZHANG_7_64,
    touts: Sequence[int] = (24, 28, 32),
    frequency_hz: float = 100e6,
) -> List[Fig9Row]:
    """AlexNet vs the Zhang FPGA'15 design at 100 MHz (Fig. 9).

    ``adpa-16-28`` matches [14]'s multiplier budget (448); 16-24 has 14%
    fewer multipliers, 16-32 14% more — the paper's three design points.
    """
    net = build("alexnet")
    rows = [
        Fig9Row(
            design=zhang.name,
            conv1_ms=zhang.layer_ms(net.conv1()),
            whole_ms=zhang.network_ms(net),
        )
    ]
    for tout in touts:
        config = CONFIG_16_16.with_pe(16, tout).with_frequency(frequency_hz)
        run = plan_network(net, config, "adaptive-2")
        rows.append(
            Fig9Row(
                design=f"adpa-16-{tout}",
                conv1_ms=config.cycles_to_ms(run.layers[0].total_cycles),
                whole_ms=run.milliseconds(),
            )
        )
    return rows


# ---------------------------------------------------------------- Table 4


@dataclass(frozen=True)
class Table4Row:
    network: str
    cpu_ms: float
    adap16_ms: float
    adap32_ms: float

    @property
    def speedup16(self) -> float:
        return self.cpu_ms / self.adap16_ms

    @property
    def speedup32(self) -> float:
        return self.cpu_ms / self.adap32_ms


def _table4_task(payload) -> Table4Row:
    net_name, cpu = payload
    net = build(net_name)
    return Table4Row(
        network=net.name,
        cpu_ms=cpu.network_ms(net),
        adap16_ms=plan_network(net, CONFIG_16_16, "adaptive-2").milliseconds(),
        adap32_ms=plan_network(net, CONFIG_32_32, "adaptive-2").milliseconds(),
    )


def table4_cpu_comparison(
    cpu: CpuModel = DEFAULT_CPU, jobs: Optional[int] = None
) -> List[Table4Row]:
    """Accelerator (1 GHz adaptive) vs the Xeon software baseline."""
    payloads = [(net_name, cpu) for net_name in BENCHMARK_NAMES]
    return parallel_map(_table4_task, payloads, jobs=jobs)


# ---------------------------------------------------------------- Table 5


@dataclass(frozen=True)
class Table5Row:
    network: str
    scheme: str
    reduction_pct: float


def table5_pe_energy(
    config: AcceleratorConfig = CONFIG_16_16,
    networks: Sequence[str] = ("alexnet", "googlenet", "vgg"),
) -> List[Table5Row]:
    """PE energy reduction relative to inter-kernel (Table 5)."""
    rows: List[Table5Row] = []
    for name in networks:
        net = build(name)
        base = plan_network(net, config, "inter").pe_energy_pj()
        for policy in ("intra", "partition", "adaptive-1", "adaptive-2"):
            energy = plan_network(net, config, policy).pe_energy_pj()
            rows.append(
                Table5Row(
                    network=name,
                    scheme=policy,
                    reduction_pct=100.0 * (1.0 - energy / base),
                )
            )
    return rows


# ---------------------------------------------------------------- Fig. 10


@dataclass(frozen=True)
class Fig10Row:
    config: str
    network: str
    policy: str
    access_bits: int


def _fig10_task(payload) -> Fig10Row:
    config, net_name, policy = payload
    run: NetworkRun = plan_network(build(net_name), config, policy)
    return Fig10Row(config.name, net_name, policy, run.buffer_access_bits)


def fig10_buffer_traffic(
    configs: Sequence[AcceleratorConfig] = BOTH_CONFIGS,
    policies: Sequence[str] = FIG8_POLICIES,
    jobs: Optional[int] = None,
) -> List[Fig10Row]:
    """Buffer access counts (in bits, the paper's y-axis) per policy."""
    payloads = [
        (config, net_name, policy)
        for config in configs
        for net_name in BENCHMARK_NAMES
        for policy in policies
    ]
    return parallel_map(_fig10_task, payloads, jobs=jobs)
