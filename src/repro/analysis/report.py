"""Text rendering of the experiment rows — the paper's figures as tables.

Every render function takes the rows produced by
:mod:`repro.analysis.experiments` and returns a printable string; the
benchmark harness tees these into its output so ``pytest benchmarks/``
regenerates the whole evaluation section in one run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.analysis.experiments import (
    Fig3Row,
    Table1Row,
    Fig7Row,
    Fig8Row,
    Fig9Row,
    Fig10Row,
    Table4Row,
    Table5Row,
)

__all__ = [
    "format_table",
    "render_table1",
    "render_energy_breakdown",
    "render_fig3",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_table4",
    "render_table5",
    "render_fig10",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _pivot(rows, row_key, col_key, value):
    """Group rows into a {row: {col: value}} table with ordered keys."""
    table: Dict[str, Dict[str, float]] = defaultdict(dict)
    col_order: List[str] = []
    row_order: List[str] = []
    for r in rows:
        rk, ck = row_key(r), col_key(r)
        if rk not in row_order:
            row_order.append(rk)
        if ck not in col_order:
            col_order.append(ck)
        table[rk][ck] = value(r)
    return table, row_order, col_order


def render_table1(rows: Sequence[Table1Row]) -> str:
    body = [
        [
            r.scheme,
            r.suited_layers,
            r.advantage,
            f"k={r.witness[0]} s={r.witness[1]} Din={r.witness[2]}",
        ]
        for r in rows
    ]
    return "Table 1 — parallelization scheme comparison\n" + format_table(
        ["scheme", "suited layer characteristic", "advantages", "witness"], body
    )


def render_fig3(rows: Sequence[Fig3Row]) -> str:
    body = [
        [
            r.network,
            r.layer,
            f"{r.raw_bits:.3e}",
            f"{r.unrolled_bits:.3e}",
            f"{r.factor:.1f}x",
        ]
        for r in rows
    ]
    return "Fig. 3 — data unrolling footprint (bits)\n" + format_table(
        ["network", "layer", "raw", "unrolled", "factor"], body
    )


def render_fig7(rows: Sequence[Fig7Row]) -> str:
    table, order, cols = _pivot(
        rows,
        lambda r: f"{r.config} {r.network}",
        lambda r: r.scheme,
        lambda r: r.cycles,
    )
    body = [
        [key] + [f"{table[key][c]:.3e}" for c in cols] for key in order
    ]
    return "Fig. 7 — Conv1 execution cycles\n" + format_table(
        ["config/network"] + list(cols), body
    )


def render_fig8(rows: Sequence[Fig8Row]) -> str:
    table, order, cols = _pivot(
        rows,
        lambda r: f"{r.config} {r.network}",
        lambda r: r.policy,
        lambda r: r.cycles,
    )
    body = [[key] + [f"{table[key][c]:.3e}" for c in cols] for key in order]
    return "Fig. 8 — whole-network cycles\n" + format_table(
        ["config/network"] + list(cols), body
    )


def render_fig9(rows: Sequence[Fig9Row]) -> str:
    body = [
        [r.design, f"{r.conv1_ms:.2f}", f"{r.whole_ms:.2f}"] for r in rows
    ]
    return "Fig. 9 — AlexNet vs Zhang FPGA'15 @100 MHz (ms)\n" + format_table(
        ["design", "conv1", "whole NN"], body
    )


def render_table4(rows: Sequence[Table4Row]) -> str:
    body = [
        [
            r.network,
            f"{r.cpu_ms:.2f}",
            f"{r.adap16_ms:.2f}",
            f"{r.speedup16:.2f}x",
            f"{r.adap32_ms:.2f}",
            f"{r.speedup32:.2f}x",
        ]
        for r in rows
    ]
    return "Table 4 — vs CPU (ms)\n" + format_table(
        ["network", "CPU", "adap-16-16", "speedup", "adap-32-32", "speedup"],
        body,
    )


def render_table5(rows: Sequence[Table5Row]) -> str:
    table, order, cols = _pivot(
        rows, lambda r: r.network, lambda r: r.scheme, lambda r: r.reduction_pct
    )
    body = [
        [key] + [f"{table[key][c]:+.2f}" for c in cols] for key in order
    ]
    return "Table 5 — PE energy reduction vs inter (%)\n" + format_table(
        ["network"] + list(cols), body
    )


def render_energy_breakdown(runs) -> str:
    """Component-level energy table for a set of runs (uJ).

    ``runs`` is an iterable of :class:`~repro.sim.trace.NetworkRun`; each
    becomes one row with PE / input / output / weight / DRAM columns —
    the stacked-bar view of where each policy spends its joules.
    """
    body = []
    for run in runs:
        e = run.energy()
        body.append(
            [
                f"{run.network_name}/{run.policy}",
                f"{e.pe_pj / 1e6:.2f}",
                f"{e.input_buffer_pj / 1e6:.2f}",
                f"{e.output_buffer_pj / 1e6:.2f}",
                f"{e.weight_buffer_pj / 1e6:.2f}",
                f"{e.dram_pj / 1e6:.2f}",
                f"{e.total_pj / 1e6:.2f}",
            ]
        )
    return "Energy breakdown (uJ)\n" + format_table(
        ["run", "PE", "in-buf", "out-buf", "w-buf", "DRAM", "total"], body
    )


def render_fig10(rows: Sequence[Fig10Row]) -> str:
    table, order, cols = _pivot(
        rows,
        lambda r: f"{r.config} {r.network}",
        lambda r: r.policy,
        lambda r: float(r.access_bits),
    )
    body = [[key] + [f"{table[key][c]:.3e}" for c in cols] for key in order]
    return "Fig. 10 — buffer access traffic (bits)\n" + format_table(
        ["config/network"] + list(cols), body
    )
