"""Export experiment rows to CSV / JSON artifacts.

Research repositories need machine-readable outputs next to the pretty
tables; these helpers serialize any of the dataclass row lists produced by
:mod:`repro.analysis.experiments` (plus derived properties like the
unrolling ``factor`` or Table 4 speedups) without pulling in pandas.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, List, Sequence

from repro.errors import ConfigError

__all__ = ["rows_to_dicts", "to_csv", "to_json", "write_csv", "write_json"]

#: computed properties worth exporting, per row type name
_EXTRA_PROPERTIES = {
    "Fig3Row": ("factor",),
    "Table4Row": ("speedup16", "speedup32"),
}


def rows_to_dicts(rows: Sequence[Any]) -> List[Dict[str, Any]]:
    """Convert dataclass rows to plain dicts, including derived properties."""
    if not rows:
        return []
    out = []
    for row in rows:
        if not dataclasses.is_dataclass(row):
            raise ConfigError(f"not a dataclass row: {row!r}")
        record = dataclasses.asdict(row)
        for prop in _EXTRA_PROPERTIES.get(type(row).__name__, ()):
            record[prop] = getattr(row, prop)
        out.append(record)
    return out


def to_csv(rows: Sequence[Any]) -> str:
    """Serialize rows as CSV text (header from the first row's fields)."""
    records = rows_to_dicts(rows)
    if not records:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0]))
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def to_json(rows: Sequence[Any], indent: int = 2) -> str:
    """Serialize rows as a JSON array."""
    return json.dumps(rows_to_dicts(rows), indent=indent)


def write_csv(rows: Sequence[Any], path: str) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(rows))


def write_json(rows: Sequence[Any], path: str) -> None:
    """Write rows to a JSON file."""
    with open(path, "w") as handle:
        handle.write(to_json(rows))
