"""Data-reuse analytics: MACs per buffer access, per scheme.

The paper's entire energy argument is about *reuse*: "the concurrent data
in PE belong to the same input maps and share same kernel ... so each
operation just need to reload either data or weight, not both".  These
helpers turn that into numbers — for any (layer, scheme) pair:

* ``data_reuse``   = useful MACs per input-buffer word read;
* ``weight_reuse`` = useful MACs per weight-buffer word read;
* ``macs_per_buffer_access`` = useful MACs per total buffer word moved,
  the single figure energy/bit ultimately follows.

The theoretical ceilings (every word read once) are ``MACs/inputs`` and
``MACs/weights``; the table shows how close each scheme gets and on which
side (inter reuses neither; intra/partition reuse weights; improved inter
recovers weight reuse for deep layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.network import LayerContext
from repro.schemes import make_scheme

__all__ = ["ReuseRow", "reuse_for_layer", "reuse_table", "render_reuse"]


@dataclass(frozen=True)
class ReuseRow:
    """Reuse factors of one scheme on one layer."""

    layer: str
    scheme: str
    data_reuse: float
    weight_reuse: float
    macs_per_buffer_access: float
    #: ceilings if every word were fetched exactly once
    data_reuse_ceiling: float
    weight_reuse_ceiling: float


def reuse_for_layer(
    ctx: LayerContext, config: AcceleratorConfig, scheme_name: str
) -> ReuseRow:
    """Compute reuse factors for one scheme on one layer.

    Raises :class:`ScheduleError` if the scheme cannot map the layer.
    """
    result = make_scheme(scheme_name).schedule(ctx, config)
    macs = result.useful_macs
    data_reads = max(1, result.accesses["input"].loads)
    weight_reads = max(1, result.accesses["weight"].loads)
    total = max(1, result.buffer_accesses)
    weights = ctx.weights if ctx.weights else 1
    return ReuseRow(
        layer=ctx.name,
        scheme=scheme_name,
        data_reuse=macs / data_reads,
        weight_reuse=macs / weight_reads,
        macs_per_buffer_access=macs / total,
        data_reuse_ceiling=macs / ctx.in_shape.elements,
        weight_reuse_ceiling=macs / weights,
    )


def reuse_table(
    ctx: LayerContext,
    config: AcceleratorConfig,
    schemes: Sequence[str] = ("inter", "inter-improved", "intra", "partition"),
) -> List[ReuseRow]:
    """Reuse rows for every legal scheme on one layer."""
    rows = []
    for name in schemes:
        try:
            rows.append(reuse_for_layer(ctx, config, name))
        except ScheduleError:
            continue
    return rows


def render_reuse(rows: Sequence[ReuseRow]) -> str:
    """Text table of reuse factors."""
    from repro.analysis.report import format_table

    body = [
        [
            r.layer,
            r.scheme,
            f"{r.data_reuse:.1f}",
            f"{r.weight_reuse:.1f}",
            f"{r.macs_per_buffer_access:.2f}",
            f"{r.data_reuse_ceiling:.0f}",
            f"{r.weight_reuse_ceiling:.0f}",
        ]
        for r in rows
    ]
    return "Data/weight reuse (useful MACs per buffer word)\n" + format_table(
        [
            "layer",
            "scheme",
            "data reuse",
            "weight reuse",
            "MACs/access",
            "data ceil",
            "weight ceil",
        ],
        body,
    )
