"""Quantization accuracy: is 16-bit fixed point really "good enough"?

Table 3 fixes the datapath at 16-bit fixed point, "validated to be good
enough with reference of [8]" (DianNao ran the same width).  This driver
makes the claim measurable for any network the library can execute: it
runs the same forward pass in float64 and at Q7.8 operand precision and
reports the per-layer signal-to-quantization-noise ratio

    SQNR_dB = 10 * log10( sum(signal^2) / sum(error^2) )

plus the top-1 agreement of the final layer's argmax.  DianNao-class
designs target roughly > 30 dB at the classifier — comfortably met here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.arch.fixedpoint import FixedPointFormat, Q7_8, dequantize, quantize
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.sim.forward import forward, init_weights

__all__ = ["LayerSqnr", "quantization_report", "render_quantization"]


@dataclass(frozen=True)
class LayerSqnr:
    """Per-layer quantization noise measurement."""

    layer: str
    sqnr_db: float
    max_abs_error: float


def _sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    signal = float(np.sum(reference.astype(np.float64) ** 2))
    noise = float(np.sum((reference - quantized) ** 2))
    if noise == 0.0:
        return math.inf
    if signal == 0.0:
        return -math.inf
    return 10.0 * math.log10(signal / noise)


def quantization_report(
    net: Network,
    seed: int = 0,
    fmt: FixedPointFormat = Q7_8,
    image_scale: float = 0.5,
) -> List[LayerSqnr]:
    """Per-layer SQNR of a Q-format forward pass vs the float reference.

    Operands (image, weights, biases) are quantized to ``fmt``; arithmetic
    runs in float on the dequantized values, matching a wide-accumulator
    datapath whose only noise source is operand quantization.
    """
    if image_scale <= 0:
        raise ConfigError("image_scale must be positive")
    rng = np.random.default_rng(seed)
    image = rng.standard_normal(net.input_shape.as_tuple()) * image_scale
    params = init_weights(net, seed=seed)

    q_image = dequantize(quantize(image, fmt), fmt)
    q_params: Dict[str, dict] = {}
    for name, p in params.items():
        q_params[name] = {
            "weights": dequantize(quantize(p["weights"], fmt), fmt),
            "bias": None
            if p["bias"] is None
            else dequantize(quantize(p["bias"], fmt), fmt),
        }

    ref = forward(net, image, params=params)
    quant = forward(net, q_image, params=q_params)

    rows: List[LayerSqnr] = []
    for layer in net:
        r, q = ref[layer.name], quant[layer.name]
        rows.append(
            LayerSqnr(
                layer=layer.name,
                sqnr_db=_sqnr_db(r, q),
                max_abs_error=float(np.abs(r - q).max()),
            )
        )
    return rows


def render_quantization(rows: List[LayerSqnr]) -> str:
    """Text table of the per-layer SQNR report."""
    from repro.analysis.report import format_table

    body = [
        [
            r.layer,
            "inf" if math.isinf(r.sqnr_db) else f"{r.sqnr_db:.1f}",
            f"{r.max_abs_error:.2e}",
        ]
        for r in rows
    ]
    return "16-bit fixed-point accuracy (Q7.8 operands)\n" + format_table(
        ["layer", "SQNR (dB)", "max |err|"], body
    )
