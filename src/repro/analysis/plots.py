"""Terminal bar charts — the paper's figures without matplotlib.

Figs. 7, 8 and 10 are grouped log-scale bar charts; this module renders the
same data as unicode horizontal bars so ``python -m repro report --plots``
and the examples can show the *shape* of each result directly in a
terminal or a CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError

__all__ = ["hbar_chart", "grouped_log_chart"]

_BAR = "█"
_HALF = "▌"


def _scaled_width(
    value: float,
    lo: float,
    hi: float,
    max_width: int,
    log: bool,
) -> int:
    if log:
        span = math.log10(hi) - math.log10(lo)
        frac = 0.0 if span == 0 else (math.log10(value) - math.log10(lo)) / span
    else:
        frac = value / hi if hi else 0.0
    frac = min(1.0, max(0.0, frac))
    return max(1, round(frac * max_width))


def hbar_chart(
    values: Mapping[str, float],
    title: str = "",
    max_width: int = 48,
    log: bool = False,
    unit: str = "",
) -> str:
    """One horizontal bar per (label, value).

    ``log=True`` scales bars between the min and max on a log10 axis —
    the paper's figures are all log-scale, where a 100x gap must remain
    visible next to a 1.2x gap.
    """
    if not values:
        raise ConfigError("nothing to plot")
    if any(v <= 0 for v in values.values()):
        raise ConfigError("bar values must be positive")
    lo, hi = min(values.values()), max(values.values())
    if log and lo == hi:
        log = False
    label_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        width = _scaled_width(value, lo, hi, max_width, log)
        bar = _BAR * width
        lines.append(f"{label.rjust(label_w)} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_log_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    max_width: int = 48,
    series_order: Optional[Sequence[str]] = None,
) -> str:
    """A log-scale bar chart with one block per group (the Fig. 7/8/10 look).

    ``groups`` maps group label (e.g. ``"16-16 alexnet"``) to a
    series->value mapping (e.g. scheme -> cycles).  All bars share one
    global log scale so cross-group comparisons stay honest.
    """
    if not groups:
        raise ConfigError("nothing to plot")
    all_values = [v for series in groups.values() for v in series.values()]
    if not all_values or any(v <= 0 for v in all_values):
        raise ConfigError("bar values must be positive")
    lo, hi = min(all_values), max(all_values)
    log = lo != hi

    series_names: List[str] = list(series_order) if series_order else []
    if not series_names:
        seen: Dict[str, None] = {}
        for series in groups.values():
            for name in series:
                seen.setdefault(name)
        series_names = list(seen)
    label_w = max(len(s) for s in series_names)

    lines = []
    if title:
        lines.append(title)
    for group_label, series in groups.items():
        lines.append(f"-- {group_label}")
        for name in series_names:
            if name not in series:
                continue
            value = series[name]
            width = _scaled_width(value, lo, hi, max_width, log)
            lines.append(
                f"  {name.rjust(label_w)} |{_BAR * width} {value:.3g}"
            )
    return "\n".join(lines)
