"""Run comparison: two policies (or configs) diffed layer by layer.

"Why is plan B faster?" is the first question every schedule change
raises; this module answers it structurally — per layer: which scheme each
plan chose, the cycle and traffic deltas, and a verdict line naming the
layers that moved the total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.sim.trace import NetworkRun

__all__ = ["LayerDelta", "compare_runs", "render_comparison"]


@dataclass(frozen=True)
class LayerDelta:
    """One layer's difference between two runs."""

    layer: str
    scheme_a: str
    scheme_b: str
    cycles_a: float
    cycles_b: float
    traffic_a: int
    traffic_b: int

    @property
    def cycles_delta(self) -> float:
        """Positive = run B is faster on this layer."""
        return self.cycles_a - self.cycles_b

    @property
    def speedup(self) -> float:
        return self.cycles_a / self.cycles_b if self.cycles_b else float("inf")

    @property
    def scheme_changed(self) -> bool:
        return self.scheme_a != self.scheme_b


def compare_runs(run_a: NetworkRun, run_b: NetworkRun) -> List[LayerDelta]:
    """Layer-aligned comparison; both runs must plan the same network."""
    if run_a.network_name != run_b.network_name:
        raise ConfigError(
            f"cannot compare runs of different networks: "
            f"{run_a.network_name!r} vs {run_b.network_name!r}"
        )
    names_a = [r.layer_name for r in run_a.layers]
    names_b = [r.layer_name for r in run_b.layers]
    if names_a != names_b:
        raise ConfigError("runs cover different layer sets")
    deltas = []
    for a, b in zip(run_a.layers, run_b.layers):
        deltas.append(
            LayerDelta(
                layer=a.layer_name,
                scheme_a=a.scheme,
                scheme_b=b.scheme,
                cycles_a=a.total_cycles,
                cycles_b=b.total_cycles,
                traffic_a=a.buffer_accesses,
                traffic_b=b.buffer_accesses,
            )
        )
    return deltas


def render_comparison(run_a: NetworkRun, run_b: NetworkRun) -> str:
    """Text report of the comparison, largest movers first."""
    from repro.analysis.report import format_table

    deltas = compare_runs(run_a, run_b)
    ordered = sorted(deltas, key=lambda d: -abs(d.cycles_delta))
    body = [
        [
            d.layer,
            d.scheme_a + (" ->" if d.scheme_changed else ""),
            d.scheme_b if d.scheme_changed else "(same)",
            f"{d.cycles_a:,.0f}",
            f"{d.cycles_b:,.0f}",
            f"{d.speedup:.2f}x",
            f"{d.traffic_a - d.traffic_b:+,d}",
        ]
        for d in ordered
    ]
    total_speedup = run_a.total_cycles / run_b.total_cycles
    movers = [d.layer for d in ordered[:3] if abs(d.cycles_delta) > 0]
    title = (
        f"{run_a.network_name}: {run_a.policy} -> {run_b.policy} = "
        f"{total_speedup:.2f}x overall"
        + (f"; decided by {', '.join(movers)}" if movers else "")
    )
    return title + "\n" + format_table(
        [
            "layer",
            "scheme A",
            "scheme B",
            "cycles A",
            "cycles B",
            "speedup",
            "traffic saved",
        ],
        body,
    )
