"""Design-space sweep utilities.

The ablation benchmarks and the design-space-exploration example all follow
the same pattern: vary one accelerator parameter, re-plan a network, and
collect totals.  These helpers centralize that pattern so sweeps stay
consistent (same policy handling, same metrics) and trivially composable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive.planner import plan_network
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.perf.instrument import phase
from repro.perf.parallel import parallel_map

__all__ = [
    "SweepPoint",
    "sweep_parameter",
    "sweep_pe_shapes",
    "pe_shapes_for_budget",
]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the varied value and the resulting totals."""

    value: object
    config_name: str
    total_cycles: float
    compute_cycles: int
    utilization: float
    buffer_accesses: int
    dram_words: int

    def milliseconds(self, frequency_hz: float) -> float:
        return self.total_cycles / frequency_hz * 1e3


def _point(value, config: AcceleratorConfig, run) -> SweepPoint:
    return SweepPoint(
        value=value,
        config_name=config.name,
        total_cycles=run.total_cycles,
        compute_cycles=run.compute_cycles,
        utilization=run.utilization,
        buffer_accesses=run.buffer_accesses,
        dram_words=run.dram_words,
    )


def _sweep_task(payload) -> SweepPoint:
    """Picklable per-grid-point unit of work for the parallel sweep."""
    net, config, policy, include_non_conv, value = payload
    run = plan_network(net, config, policy, include_non_conv=include_non_conv)
    return _point(value, config, run)


def sweep_parameter(
    net: Network,
    base: AcceleratorConfig,
    parameter: str,
    values: Sequence,
    policy: str = "adaptive-2",
    include_non_conv: bool = False,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Re-plan ``net`` for each value of one AcceleratorConfig field.

    ``parameter`` must be a real config field (e.g.
    ``"dram_words_per_cycle"``, ``"input_buffer_bytes"``).  ``jobs`` fans
    the grid points out over a process pool; points come back in ``values``
    order either way.
    """
    field_names = {f.name for f in dataclasses.fields(AcceleratorConfig)}
    if parameter not in field_names:
        raise ConfigError(
            f"unknown config parameter {parameter!r}; "
            f"choose from {sorted(field_names)}"
        )
    payloads = [
        (
            net,
            dataclasses.replace(base, **{parameter: value}),
            policy,
            include_non_conv,
            value,
        )
        for value in values
    ]
    with phase("sweep_parameter"):
        return parallel_map(_sweep_task, payloads, jobs=jobs)


def pe_shapes_for_budget(
    budget: int,
    tolerance: float = 0.125,
    widths: Sequence[int] = (4, 8, 16, 32, 64, 128),
) -> List[Tuple[int, int]]:
    """(Tin, Tout) shapes whose multiplier count is within tolerance of budget."""
    if budget <= 0:
        raise ConfigError("budget must be positive")
    shapes = [
        (tin, tout)
        for tin in widths
        for tout in widths
        if abs(tin * tout - budget) / budget <= tolerance
    ]
    if not shapes:
        raise ConfigError(
            f"no (Tin, Tout) shape within {tolerance:.0%} of {budget} multipliers"
        )
    return shapes


def sweep_pe_shapes(
    net: Network,
    base: AcceleratorConfig,
    budget: int,
    policy: str = "adaptive-2",
    jobs: Optional[int] = None,
) -> Dict[str, SweepPoint]:
    """Plan ``net`` on every PE shape at (approximately) one multiplier budget."""
    payloads = [
        (net, base.with_pe(tin, tout), policy, False, (tin, tout))
        for tin, tout in pe_shapes_for_budget(budget)
    ]
    with phase("sweep_pe_shapes"):
        points = parallel_map(_sweep_task, payloads, jobs=jobs)
    return {point.config_name: point for point in points}
