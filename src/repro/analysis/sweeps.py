"""Design-space sweep utilities.

The ablation benchmarks and the design-space-exploration example all follow
the same pattern: vary one accelerator parameter, re-plan a network, and
collect totals.  These helpers centralize that pattern so sweeps stay
consistent (same policy handling, same metrics) and trivially composable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.adaptive.planner import plan_network
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = [
    "SweepPoint",
    "sweep_parameter",
    "sweep_pe_shapes",
    "pe_shapes_for_budget",
]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the varied value and the resulting totals."""

    value: object
    config_name: str
    total_cycles: float
    compute_cycles: int
    utilization: float
    buffer_accesses: int
    dram_words: int

    def milliseconds(self, frequency_hz: float) -> float:
        return self.total_cycles / frequency_hz * 1e3


def _point(value, config: AcceleratorConfig, run) -> SweepPoint:
    return SweepPoint(
        value=value,
        config_name=config.name,
        total_cycles=run.total_cycles,
        compute_cycles=run.compute_cycles,
        utilization=run.utilization,
        buffer_accesses=run.buffer_accesses,
        dram_words=run.dram_words,
    )


def sweep_parameter(
    net: Network,
    base: AcceleratorConfig,
    parameter: str,
    values: Sequence,
    policy: str = "adaptive-2",
    include_non_conv: bool = False,
) -> List[SweepPoint]:
    """Re-plan ``net`` for each value of one AcceleratorConfig field.

    ``parameter`` must be a real config field (e.g.
    ``"dram_words_per_cycle"``, ``"input_buffer_bytes"``).
    """
    field_names = {f.name for f in dataclasses.fields(AcceleratorConfig)}
    if parameter not in field_names:
        raise ConfigError(
            f"unknown config parameter {parameter!r}; "
            f"choose from {sorted(field_names)}"
        )
    points = []
    for value in values:
        config = dataclasses.replace(base, **{parameter: value})
        run = plan_network(net, config, policy, include_non_conv=include_non_conv)
        points.append(_point(value, config, run))
    return points


def pe_shapes_for_budget(
    budget: int,
    tolerance: float = 0.125,
    widths: Sequence[int] = (4, 8, 16, 32, 64, 128),
) -> List[Tuple[int, int]]:
    """(Tin, Tout) shapes whose multiplier count is within tolerance of budget."""
    if budget <= 0:
        raise ConfigError("budget must be positive")
    shapes = [
        (tin, tout)
        for tin in widths
        for tout in widths
        if abs(tin * tout - budget) / budget <= tolerance
    ]
    if not shapes:
        raise ConfigError(
            f"no (Tin, Tout) shape within {tolerance:.0%} of {budget} multipliers"
        )
    return shapes


def sweep_pe_shapes(
    net: Network,
    base: AcceleratorConfig,
    budget: int,
    policy: str = "adaptive-2",
) -> Dict[str, SweepPoint]:
    """Plan ``net`` on every PE shape at (approximately) one multiplier budget."""
    out: Dict[str, SweepPoint] = {}
    for tin, tout in pe_shapes_for_budget(budget):
        config = base.with_pe(tin, tout)
        run = plan_network(net, config, policy)
        out[config.name] = _point((tin, tout), config, run)
    return out
