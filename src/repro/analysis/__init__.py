"""Experiment drivers and report rendering for every table and figure."""

from repro.analysis.experiments import (
    BOTH_CONFIGS,
    table1_scheme_comparison,
    FIG8_POLICIES,
    fig3_unrolling,
    fig7_conv1,
    fig8_whole_network,
    fig9_zhang_comparison,
    fig10_buffer_traffic,
    table4_cpu_comparison,
    table5_pe_energy,
)
from repro.analysis.compare import (
    LayerDelta,
    compare_runs,
    render_comparison,
)
from repro.analysis.export import (
    rows_to_dicts,
    to_csv,
    to_json,
    write_csv,
    write_json,
)
from repro.analysis.headline import (
    HeadlineNumbers,
    headline_numbers,
    render_headline,
)
from repro.analysis.layerwise import (
    LayerReportRow,
    layerwise_rows,
    render_layerwise,
)
from repro.analysis.metrics import (
    arithmetic_mean,
    geomean,
    reduction_pct,
    speedup,
)
from repro.analysis.plots import grouped_log_chart, hbar_chart
from repro.analysis.power import (
    PowerSample,
    average_power_w,
    peak_power_w,
    power_trace,
    render_power,
)
from repro.analysis.quantization import (
    LayerSqnr,
    quantization_report,
    render_quantization,
)
from repro.analysis.reuse import (
    ReuseRow,
    render_reuse,
    reuse_for_layer,
    reuse_table,
)
from repro.analysis.sweeps import (
    SweepPoint,
    pe_shapes_for_budget,
    sweep_parameter,
    sweep_pe_shapes,
)
from repro.analysis.timeline import render_timeline
from repro.analysis.report import (
    format_table,
    render_table1,
    render_fig3,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_table4,
    render_table5,
)

__all__ = [
    "BOTH_CONFIGS",
    "table1_scheme_comparison",
    "render_table1",
    "FIG8_POLICIES",
    "fig3_unrolling",
    "fig7_conv1",
    "fig8_whole_network",
    "fig9_zhang_comparison",
    "fig10_buffer_traffic",
    "table4_cpu_comparison",
    "table5_pe_energy",
    "LayerDelta",
    "compare_runs",
    "render_comparison",
    "rows_to_dicts",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "grouped_log_chart",
    "PowerSample",
    "average_power_w",
    "peak_power_w",
    "power_trace",
    "render_power",
    "LayerSqnr",
    "quantization_report",
    "render_quantization",
    "ReuseRow",
    "render_reuse",
    "reuse_for_layer",
    "reuse_table",
    "SweepPoint",
    "pe_shapes_for_budget",
    "sweep_parameter",
    "sweep_pe_shapes",
    "hbar_chart",
    "HeadlineNumbers",
    "headline_numbers",
    "render_headline",
    "LayerReportRow",
    "layerwise_rows",
    "render_layerwise",
    "render_timeline",
    "arithmetic_mean",
    "geomean",
    "reduction_pct",
    "speedup",
    "format_table",
    "render_fig3",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_table4",
    "render_table5",
]
