"""Comparison metrics: speedups, reductions, means.

Small, heavily-tested helpers so every experiment reports ratios the same
way the paper does ("adpa outperforms inter by 1.83x", "90.13% memory
traffic reduction", ...).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigError

__all__ = ["speedup", "reduction_pct", "geomean", "arithmetic_mean"]


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline`` (>1 = faster)."""
    if baseline <= 0 or improved <= 0:
        raise ConfigError("speedup needs positive quantities")
    return baseline / improved


def reduction_pct(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive means ``improved`` consumes less; negative (as in Table 5's VGG
    intra row) means it consumes more.
    """
    if baseline <= 0:
        raise ConfigError("reduction needs a positive baseline")
    return 100.0 * (1.0 - improved / baseline)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the honest way to average speedups)."""
    vals: Sequence[float] = list(values)
    if not vals:
        raise ConfigError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ConfigError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (what the paper uses for its 'average of 4 NNs')."""
    vals = list(values)
    if not vals:
        raise ConfigError("mean of an empty sequence")
    return sum(vals) / len(vals)
