"""Execution timeline: what bounds each layer, drawn as paired bars.

For every layer of a run, two bars on a shared linear scale — the PE
array's compute cycles and the memory-side stream cycles (DMA and host
reshape, which pipeline).  The layer's wall-clock is the longer bar; a
layer is "memory-bound" exactly when its stream bar wins.  This is the
picture behind the VGG discussion and the intra-unrolling penalties.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.sim.trace import NetworkRun

__all__ = ["render_timeline"]

_COMPUTE = "█"
_STREAM = "░"


def render_timeline(run: NetworkRun, width: int = 50, top: int = 0) -> str:
    """ASCII compute-vs-stream timeline of a run.

    ``top > 0`` keeps only the ``top`` longest layers.
    """
    if not run.layers:
        raise ConfigError("run has no layers to draw")
    layers = list(run.layers)
    if top > 0:
        layers = sorted(layers, key=lambda r: -r.total_cycles)[:top]
    longest = max(r.total_cycles for r in layers)
    if longest <= 0:
        raise ConfigError("run has no cycles to draw")
    label_w = max(len(r.layer_name) for r in layers)
    scheme_w = max(len(r.scheme) for r in layers)

    lines: List[str] = [
        f"{run.network_name} / {run.policy} on {run.config.name} — "
        f"compute ({_COMPUTE}) vs stream ({_STREAM}), "
        f"{longest:,.0f} cycles full scale"
    ]
    for r in layers:
        compute_w = round(r.operations / longest * width)
        stream_w = round(r.stream_cycles / longest * width)
        bound = "C" if r.operations >= r.stream_cycles else "M"
        lines.append(
            f"{r.layer_name.rjust(label_w)} {r.scheme.ljust(scheme_w)} "
            f"[{bound}] {_COMPUTE * compute_w}"
        )
        lines.append(
            f"{' ' * label_w} {' ' * scheme_w}     {_STREAM * stream_w}"
        )
    return "\n".join(lines)
