"""Power traces: energy over time, layer by layer.

Energy totals (Table 5) hide the temporal shape; a deployment also cares
about *power* — average watts over the run and which layer draws the most.
These helpers divide each layer's modelled energy by its wall-clock at the
configuration's frequency, giving a per-layer power trace and run-level
average/peak figures.

Absolute watts inherit the energy table's 45 nm-class calibration, so treat
them like the energy numbers: meaningful relatively, plausible absolutely
(a few hundred mW for the 16-16 design, DianNao-era territory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.adaptive.search import layer_energy_pj
from repro.arch.energy import EnergyModel
from repro.errors import ConfigError
from repro.sim.trace import NetworkRun

__all__ = ["PowerSample", "power_trace", "average_power_w", "peak_power_w", "render_power"]


@dataclass(frozen=True)
class PowerSample:
    """One layer's time/energy/power point."""

    layer: str
    scheme: str
    start_ms: float
    duration_ms: float
    energy_uj: float

    @property
    def power_w(self) -> float:
        """Average power over the layer (W = uJ / ms / 1000 * 1000 = mW...)."""
        if self.duration_ms <= 0:
            return 0.0
        return (self.energy_uj * 1e-6) / (self.duration_ms * 1e-3)


def power_trace(run: NetworkRun) -> List[PowerSample]:
    """Per-layer power samples, with cumulative start times."""
    model = EnergyModel(run.config)
    samples: List[PowerSample] = []
    clock_ms = run.input_reorder_words / run.config.dram_words_per_cycle
    clock_ms = run.config.cycles_to_ms(clock_ms)
    for r in run.layers:
        duration_ms = run.config.cycles_to_ms(r.total_cycles)
        samples.append(
            PowerSample(
                layer=r.layer_name,
                scheme=r.scheme,
                start_ms=clock_ms,
                duration_ms=duration_ms,
                energy_uj=layer_energy_pj(r, model) / 1e6,
            )
        )
        clock_ms += duration_ms
    return samples


def average_power_w(run: NetworkRun) -> float:
    """Whole-run average power (total energy / total time)."""
    total_ms = run.milliseconds()
    if total_ms <= 0:
        raise ConfigError("run has no duration")
    return (run.energy().total_pj * 1e-12) / (total_ms * 1e-3)


def peak_power_w(run: NetworkRun) -> float:
    """Highest per-layer average power in the run."""
    samples = [s for s in power_trace(run) if s.duration_ms > 0]
    if not samples:
        raise ConfigError("run has no timed layers")
    return max(s.power_w for s in samples)


def render_power(run: NetworkRun, top: int = 0) -> str:
    """Text table of the power trace."""
    from repro.analysis.report import format_table

    samples = power_trace(run)
    if top > 0:
        samples = sorted(samples, key=lambda s: -s.power_w)[:top]
    body = [
        [
            s.layer,
            s.scheme,
            f"{s.start_ms:.3f}",
            f"{s.duration_ms:.3f}",
            f"{s.energy_uj:.1f}",
            f"{s.power_w:.2f}",
        ]
        for s in samples
    ]
    title = (
        f"{run.network_name}/{run.policy}: avg {average_power_w(run):.2f} W, "
        f"peak {peak_power_w(run):.2f} W"
    )
    return title + "\n" + format_table(
        ["layer", "scheme", "start (ms)", "dur (ms)", "energy (uJ)", "power (W)"],
        body,
    )
