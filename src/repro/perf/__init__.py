"""Planning-performance subsystem: schedule cache, parallel executor, timers.

The planner, the oracle search and every design-space sweep ultimately call
``scheme.schedule(ctx, config)`` on (layer geometry, config) pairs — and
real workloads repeat those pairs constantly: VGG stacks the same 3x3 conv
geometry dozens of times, and a sweep replans the same network at every grid
point.  This package makes that redundancy free:

- :mod:`repro.perf.cache` — content-addressed memoization of
  :class:`~repro.schemes.base.ScheduleResult` keyed by layer geometry plus
  the config knobs that actually affect scheduling (LRU-bounded, opt-out);
- :mod:`repro.perf.parallel` — a process-pool ``parallel_map`` with
  deterministic result ordering and graceful serial fallback, used to fan
  out oracle searches and sweep grids;
- :mod:`repro.perf.instrument` — wall-time phase accounting and the
  ``--perf-report`` renderer.

See ``docs/performance.md`` for the cache-key design and CLI semantics.
"""

from repro.perf.cache import (
    CacheStats,
    ScheduleCache,
    cached_schedule,
    canonical_key,
    config_key,
    layer_key,
    schedule_cache,
)
from repro.perf.instrument import PERF, PerfRecorder, phase, render_perf_report
from repro.perf.parallel import (
    get_default_jobs,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
)

__all__ = [
    "CacheStats",
    "ScheduleCache",
    "cached_schedule",
    "canonical_key",
    "config_key",
    "layer_key",
    "schedule_cache",
    "PERF",
    "PerfRecorder",
    "phase",
    "render_perf_report",
    "get_default_jobs",
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
]
