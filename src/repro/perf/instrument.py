"""Lightweight perf instrumentation: phase wall-times and counters.

The planner, oracle search, batch planner and sweeps wrap their work in
:func:`phase` blocks; the CLI's ``--perf-report`` renders the accumulated
times together with the schedule-cache counters.  Overhead per phase entry
is two ``perf_counter`` calls and a dict update — negligible next to even a
single layer schedule — so the recorder stays always-on.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PerfRecorder", "PERF", "phase", "render_perf_report"]


class PerfRecorder:
    """Accumulates wall-time per named phase plus free-form counters."""

    def __init__(self) -> None:
        #: phase name -> [entry count, total seconds]
        self._phases: "OrderedDict[str, list]" = OrderedDict()
        self._counters: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one entry of phase ``name`` (re-entrant and nestable)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self._phases.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += elapsed

    def incr(self, name: str, by: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def reset(self) -> None:
        self._phases.clear()
        self._counters.clear()

    def phases(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"calls": n, "seconds": s}}`` snapshot."""
        return {
            name: {"calls": count, "seconds": seconds}
            for name, (count, seconds) in self._phases.items()
        }

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)


#: process-wide recorder used by the planning layers and the CLI
PERF = PerfRecorder()


def phase(name: str):
    """Shorthand for ``PERF.phase(name)``."""
    return PERF.phase(name)


def render_perf_report(recorder: Optional[PerfRecorder] = None, cache=None) -> str:
    """Human-readable summary: phase times, counters, cache stats."""
    if recorder is None:
        recorder = PERF
    if cache is None:
        from repro.perf.cache import schedule_cache as cache

    lines = ["perf report", "-" * 64]
    phases = recorder.phases()
    if phases:
        lines.append(f"{'phase':<28s} {'calls':>7s} {'total s':>10s} {'avg ms':>10s}")
        for name, data in phases.items():
            calls, seconds = data["calls"], data["seconds"]
            avg_ms = seconds / calls * 1e3 if calls else 0.0
            lines.append(f"{name:<28s} {calls:>7d} {seconds:>10.4f} {avg_ms:>10.3f}")
    else:
        lines.append("(no timed phases recorded)")
    counters = recorder.counters()
    for name, value in sorted(counters.items()):
        lines.append(f"{name:<28s} {value:>7d}")
    stats = cache.stats()
    state = "enabled" if stats.enabled else "disabled"
    lines.append(
        f"plan cache ({state}): {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.1%} hit rate), {stats.evictions} evictions, "
        f"{stats.size}/{stats.maxsize} entries"
    )
    lines.append(f"scheme evaluations avoided: {stats.evaluations_avoided}")
    if stats.persist_dir:
        lines.append(
            f"plan cache disk ({stats.persist_dir}): {stats.disk_hits} hits, "
            f"{stats.disk_writes} writes, {stats.disk_errors} errors"
        )
    return "\n".join(lines)
