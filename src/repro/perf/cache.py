"""Content-addressed schedule cache.

A scheme's :meth:`~repro.schemes.base.Scheme.schedule` is a pure function of
the layer's *geometry* and the config knobs that shape the mapping — the
layer's name and the clock frequency never enter the arithmetic.  The cache
exploits that: results are memoized under a canonical key

    (scheme name,
     layer geometry: k, s, pad, Din, Dout, groups, bias, in/out shapes,
     config knobs:   Tin, Tout, the four buffer sizes, word width,
                     DRAM words/cycle)

so AlexNet's conv4 and conv5 (identical geometry), VGG's repeated 3x3
stacks, and every re-plan of the same network hit instead of re-deriving the
whole tiling.  Knobs that do *not* affect the schedule arithmetic
(``frequency_hz``, ``overlap_streams``) are deliberately excluded; a cached
result is rebound to the caller's exact ``ctx``/``config`` on the way out,
so time conversion and overlap semantics always follow the caller's config.

Illegal mappings are cached too (negative entries): the oracle probes every
candidate scheme on every layer, and "partition cannot map this geometry"
is just as deterministic as a successful schedule.

The cache is LRU-bounded, counts hits/misses/evictions, and can be disabled
globally (``--no-plan-cache`` / ``REPRO_NO_PLAN_CACHE=1``) or per instance.
Entries are defensive copies in both directions — callers may freely mutate
returned results without corrupting the cache.

Opt-in on-disk persistence (``REPRO_PLAN_CACHE_DIR=/path`` or
``configure(persist_dir=...)``) spills every entry — including negative
ones — to one versioned pickle per content digest, so repeated sweep and
planner invocations across processes and CI runs start warm.  Writes are
atomic (tmp file + ``os.replace``), loads verify the stored key against
the requested one (a digest collision or stale format loses to a re-plan,
never to a wrong answer), and every disk error is swallowed and counted —
a broken cache directory degrades to a cold cache, not a crash.
``clear()`` drops only the in-memory entries; the directory is yours.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.buffers import AccessCounter
from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.network import LayerContext
from repro.schemes import Scheme, make_scheme
from repro.schemes.base import ScheduleResult

__all__ = [
    "CacheStats",
    "ScheduleCache",
    "schedule_cache",
    "cached_schedule",
    "layer_key",
    "config_key",
    "canonical_key",
    "DEFAULT_MAXSIZE",
]

DEFAULT_MAXSIZE = 4096

#: sentinel marker for negative entries (the scheme raised ScheduleError)
_ILLEGAL = "illegal"


def layer_key(ctx: LayerContext) -> Tuple:
    """Canonical geometry of one layer context (name-independent)."""
    layer = ctx.layer
    return (
        type(layer).__name__,
        getattr(layer, "kernel", 0),
        getattr(layer, "stride", 0),
        getattr(layer, "pad", 0),
        getattr(layer, "in_maps", 0),
        getattr(layer, "out_maps", 0),
        getattr(layer, "groups", 1),
        getattr(layer, "bias", False),
        ctx.in_shape.as_tuple(),
        ctx.out_shape.as_tuple(),
    )


def config_key(config: AcceleratorConfig) -> Tuple:
    """The config knobs that affect schedule arithmetic, nothing more."""
    return (
        config.tin,
        config.tout,
        config.input_buffer_bytes,
        config.output_buffer_bytes,
        config.weight_buffer_bytes,
        config.bias_buffer_bytes,
        config.word_bytes,
        config.dram_words_per_cycle,
    )


def canonical_key(scheme_name: str, ctx: LayerContext, config: AcceleratorConfig) -> str:
    """Stable content-address digest of one cache entry (for reporting)."""
    raw = repr((scheme_name, layer_key(ctx), config_key(config)))
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    enabled: bool
    disk_hits: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    persist_dir: Optional[str] = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def evaluations_avoided(self) -> int:
        """Scheme evaluations the cache saved (one per hit)."""
        return self.hits


def _copy_result(
    result: ScheduleResult,
    layer_name: Optional[str] = None,
    config: Optional[AcceleratorConfig] = None,
) -> ScheduleResult:
    """Copy with fresh mutable containers, optionally rebound to a caller.

    Hand-rolled instead of :func:`dataclasses.replace` because this is the
    cache's hot path — a hit must stay several times cheaper than running
    the scheme, and ``replace`` alone costs a third of a schedule.
    """
    clone = object.__new__(ScheduleResult)
    clone.__dict__.update(result.__dict__)
    clone.accesses = {
        name: AccessCounter(c.loads, c.stores)
        for name, c in result.accesses.items()
    }
    clone.notes = dict(result.notes)
    if layer_name is not None:
        clone.layer_name = layer_name
    if config is not None:
        clone.config = config
    return clone


class ScheduleCache:
    """LRU memo of per-layer schedule results, keyed by content."""

    #: bump when the pickle payload layout changes; mismatched files are
    #: silently ignored (treated as a miss) rather than migrated
    _PERSIST_FORMAT = 1

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        enabled: bool = True,
        persist_dir: Optional[str] = None,
    ) -> None:
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._schemes: Dict[str, Scheme] = {}
        self.maxsize = maxsize
        self.enabled = enabled
        self.persist_dir = persist_dir or None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_errors = 0

    # -- configuration ----------------------------------------------------

    def configure(
        self,
        enabled: Optional[bool] = None,
        maxsize: Optional[int] = None,
        persist_dir: Optional[str] = None,
    ) -> None:
        """Flip the enable switch, resize the LRU bound, or point the cache
        at an on-disk directory (``""`` turns persistence off again)."""
        with self._lock:
            if enabled is not None:
                self.enabled = enabled
            if maxsize is not None:
                self.maxsize = maxsize
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            if persist_dir is not None:
                self.persist_dir = persist_dir or None

    def clear(self) -> None:
        """Drop all in-memory entries and zero the counters.

        The on-disk directory (if any) is left untouched — it is shared
        state across processes; delete its files to cold-start it.
        """
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0
            self.disk_hits = self.disk_writes = self.disk_errors = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
                enabled=self.enabled,
                disk_hits=self.disk_hits,
                disk_writes=self.disk_writes,
                disk_errors=self.disk_errors,
                persist_dir=self.persist_dir,
            )

    def __len__(self) -> int:
        return len(self._entries)

    # -- the hot path -----------------------------------------------------

    def _scheme(self, name: str) -> Scheme:
        scheme = self._schemes.get(name)
        if scheme is None:
            scheme = self._schemes[name] = make_scheme(name)
        return scheme

    def get_or_schedule(
        self, scheme_name: str, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        """Return the memoized schedule for ``(scheme, geometry, config)``.

        On a miss the scheme runs once and the result is stored; on a hit a
        fresh copy is rebound to the caller's layer name and config.  Raises
        :class:`ScheduleError` exactly as the uncached path would (negative
        entries replay the failure without re-probing the scheme).
        """
        if not self.enabled:
            return self._scheme(scheme_name).schedule(ctx, config)
        key = (scheme_name, layer_key(ctx), config_key(config))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            entry = self._disk_load(key)
            if entry is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.maxsize:
                        self._entries.popitem(last=False)
                        self.evictions += 1
        if entry is not None:
            if isinstance(entry, tuple) and entry[0] is _ILLEGAL:
                raise ScheduleError(entry[1])
            return _copy_result(entry, layer_name=ctx.name, config=config)
        try:
            result = self._scheme(scheme_name).schedule(ctx, config)
        except ScheduleError as exc:
            self._store(key, (_ILLEGAL, str(exc)))
            raise
        self._store(key, _copy_result(result))
        return result

    def _store(self, key: Tuple, entry: object) -> None:
        with self._lock:
            self.misses += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        self._disk_store(key, entry)

    # -- optional on-disk persistence --------------------------------------

    def _disk_path(self, key: Tuple) -> str:
        digest = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.persist_dir, digest + ".pkl")  # type: ignore[arg-type]

    def _disk_load(self, key: Tuple) -> Optional[object]:
        """Fetch one entry from the persist directory; None on any problem."""
        if not self.persist_dir:
            return None
        try:
            with open(self._disk_path(key), "rb") as handle:
                payload = pickle.load(handle)
            version, stored_key, entry = payload
        except FileNotFoundError:
            return None
        except Exception:
            with self._lock:
                self.disk_errors += 1
            return None
        # a digest collision or a stale format must lose to a re-plan,
        # never produce a wrong schedule
        if version != self._PERSIST_FORMAT or stored_key != key:
            return None
        if isinstance(entry, tuple) and entry and entry[0] == _ILLEGAL:
            # re-intern the sentinel: the memory path compares by identity
            entry = (_ILLEGAL,) + tuple(entry[1:])
        return entry

    def _disk_store(self, key: Tuple, entry: object) -> None:
        """Spill one entry to the persist directory; errors count, not raise."""
        if not self.persist_dir:
            return
        try:
            os.makedirs(self.persist_dir, exist_ok=True)
            path = self._disk_path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                pickle.dump((self._PERSIST_FORMAT, key, entry), handle)
            os.replace(tmp, path)
            with self._lock:
                self.disk_writes += 1
        except Exception:
            with self._lock:
                self.disk_errors += 1


#: process-wide cache used by the planner, the oracle and the sweeps;
#: REPRO_NO_PLAN_CACHE=1 (or --no-plan-cache on the CLI) disables it, and
#: REPRO_PLAN_CACHE_DIR=/path persists it across processes.
schedule_cache = ScheduleCache(
    enabled=not os.environ.get("REPRO_NO_PLAN_CACHE"),
    persist_dir=os.environ.get("REPRO_PLAN_CACHE_DIR") or None,
)


def cached_schedule(
    scheme_name: str, ctx: LayerContext, config: AcceleratorConfig
) -> ScheduleResult:
    """Schedule through the process-wide cache (the planner's entry point)."""
    return schedule_cache.get_or_schedule(scheme_name, ctx, config)
