"""Process-pool fan-out for design-space exploration.

``parallel_map`` is the one primitive the oracle search, the sweep helpers
and the figure drivers share: map a picklable function over a work list on a
``concurrent.futures`` process pool, preserving input order (results are
bit-identical to the serial path, just reordered in time), chunking the list
to amortize IPC, and falling back to plain serial iteration whenever a pool
cannot be had (single job, one item, or a sandbox that forbids forking).

Exceptions raised *by the work function* propagate unchanged — only pool
infrastructure failures trigger the serial fallback, and the fallback
recomputes everything serially so results stay correct either way.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigError
from repro.perf.instrument import PERF

__all__ = [
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
    "get_default_jobs",
]

T = TypeVar("T")
R = TypeVar("R")

#: process-wide default worker count, set by the CLI's --jobs flag
_default_jobs = 1


def set_default_jobs(jobs: int) -> None:
    """Set the default worker count (``--jobs``); -1 means all CPUs."""
    global _default_jobs
    if jobs == 0:
        raise ConfigError("jobs must be nonzero (use -1 for all CPUs)")
    _default_jobs = jobs


def get_default_jobs() -> int:
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count.

    ``None`` defers to the process-wide default; any negative value means
    "all CPUs".
    """
    if jobs is None:
        jobs = _default_jobs
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` — possibly on a process pool.

    Results come back in input order regardless of completion order, so
    parallel and serial runs are interchangeable.  With ``jobs <= 1`` (the
    default unless ``--jobs``/``set_default_jobs`` raised it) no pool is
    created at all.
    """
    work = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))
    except (OSError, ImportError, BrokenProcessPool, pickle.PicklingError):
        # no usable pool on this host (or the payload cannot cross the
        # process boundary) — degrade to the serial path
        PERF.incr("parallel_fallbacks")
        return [fn(item) for item in work]
