"""Process-pool fan-out for design-space exploration.

``parallel_map`` is the one primitive the oracle search, the sweep helpers
and the figure drivers share: map a picklable function over a work list on a
``concurrent.futures`` process pool, preserving input order (results are
bit-identical to the serial path, just reordered in time), chunking the list
to amortize IPC, and falling back to plain serial iteration whenever a pool
cannot be had (single job, one item, or a sandbox that forbids forking).

Exceptions raised *by the work function* propagate unchanged — only pool
infrastructure failures trigger the serial fallback, and the fallback
recomputes everything serially so results stay correct either way.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigError
from repro.perf.instrument import PERF

__all__ = [
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
    "get_default_jobs",
]

T = TypeVar("T")
R = TypeVar("R")

#: process-wide default worker count, set by the CLI's --jobs flag
_default_jobs = 1


def set_default_jobs(jobs: int) -> None:
    """Set the default worker count (``--jobs``); -1 means all CPUs."""
    global _default_jobs
    if jobs == 0:
        raise ConfigError("jobs must be nonzero (use -1 for all CPUs)")
    _default_jobs = jobs


def get_default_jobs() -> int:
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count.

    ``None`` defers to the process-wide default; any negative value means
    "all CPUs".
    """
    if jobs is None:
        jobs = _default_jobs
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` — possibly on a process pool.

    Results come back in input order regardless of completion order, so
    parallel and serial runs are interchangeable.  With ``jobs <= 1`` (the
    default unless ``--jobs``/``set_default_jobs`` raised it) no pool is
    created at all.

    ``progress``, when given, is called as ``progress(done, total)`` in the
    *parent* process after each item's result becomes available, with
    ``done`` counting up 1..total in input order — so long sweeps can log
    advancement without perturbing results.  The callback never changes
    what is returned: results and their order are bit-identical with or
    without it.  An exception raised by the callback propagates (it is the
    caller's own code), exactly like one raised by ``fn``.
    """
    work = list(items)
    total = len(work)
    workers = min(resolve_jobs(jobs), total)

    def serial() -> List[R]:
        results: List[R] = []
        for item in work:
            results.append(fn(item))
            if progress is not None:
                progress(len(results), total)
        return results

    if workers <= 1:
        return serial()
    if chunksize is None:
        chunksize = max(1, total // (workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if progress is None:
                return list(pool.map(fn, work, chunksize=chunksize))
            # pool.map yields in input order as results complete, so the
            # callback sees the same 1..total sequence the serial path does
            results = []
            for result in pool.map(fn, work, chunksize=chunksize):
                results.append(result)
                progress(len(results), total)
            return results
    except (OSError, ImportError, BrokenProcessPool, pickle.PicklingError):
        # no usable pool on this host (or the payload cannot cross the
        # process boundary) — degrade to the serial path
        PERF.incr("parallel_fallbacks")
        return serial()
