"""Numerical integrity guard: ABFT convolution, SDC injection, recovery.

PR 4's resilience layer handles *loud* faults — crashed chips, slow
replicas, flapping links — that health checks can see.  This package
handles the fault a health check cannot see: a single bit flip in an
activation buffer, weight buffer, partial-sum accumulator, or output
word, silently corrupting results while every liveness probe stays green.

- :mod:`repro.integrity.sdc` — seeded single-bit-flip injection at the
  four buffer sites, realised through hooks in the functional conv paths;
- :mod:`repro.integrity.abft` — Huang-Abraham row/column checksums
  adapted to convolution, exact in the fixed-point integer-code domain
  (zero false positives by construction), with localization and
  detect-and-recompute recovery per Algorithm 1's sub-kernel independence;
- :mod:`repro.integrity.sweep` — the benchmark sweep behind
  ``repro integrity`` and ``benchmarks/bench_integrity.py``: detection /
  false-positive / correction rates and the verified-vs-unverified
  overhead, as a byte-stable rollup.

The scheme-level cost of the guard lives in :mod:`repro.schemes.abft`;
the serving-tier integration (verified replicas, SDC chaos scenarios) in
:mod:`repro.serve.verified` and :mod:`repro.resilience.scenarios`.

See ``docs/integrity.md`` for the checksum math and the fault model.
"""

from repro.integrity.abft import (
    ABFT_PATHS,
    Checksums,
    CheckReport,
    RecoveryReport,
    VerifiedConvResult,
    check_output,
    golden_codes,
    predicted_checksums,
    quantize_conv_operands,
    recompute_flagged,
    verified_conv,
)
from repro.integrity.sdc import FlipEvent, SDCInjector, flip_code
from repro.integrity.sweep import SWEEP_LAYERS, run_sweep, sweep_to_json

__all__ = [
    "ABFT_PATHS",
    "Checksums",
    "CheckReport",
    "FlipEvent",
    "RecoveryReport",
    "SDCInjector",
    "SWEEP_LAYERS",
    "VerifiedConvResult",
    "check_output",
    "flip_code",
    "golden_codes",
    "predicted_checksums",
    "quantize_conv_operands",
    "recompute_flagged",
    "run_sweep",
    "sweep_to_json",
    "verified_conv",
]
