"""Silent-data-corruption injection into the functional datapath.

:class:`SDCInjector` carries a set of :class:`~repro.resilience.faults.
BitFlipFault` descriptors and realises them at the hook sites the conv
paths in :mod:`repro.sim.functional` expose:

* ``activation`` / ``weight`` — one bit of one element of the raw operand
  tensor flips before the convolution reads it (a stuck SRAM cell in the
  input or kernel buffer);
* ``psum`` — one bit of the live partial-sum accumulator flips after a
  chosen accumulation step (the widest-propagating site: every later
  accumulation carries the error forward, cf. arXiv:2011.00850);
* ``output`` — one bit of the final output array flips after the last
  add (a writeback/requantization-stage upset).

Injection operates on integer *codes* (the fixed-point domain of
:mod:`repro.sim.datapath`); flips are two's-complement exact within the
word width, so a sign-bit flip wraps the way real hardware would.  Each
fault fires at most once and the injector records a :class:`FlipEvent`
per realised flip, so tests and the benchmark sweep can assert which
faults actually landed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.resilience.faults import BITFLIP_SITES, BitFlipFault

__all__ = ["FlipEvent", "SDCInjector", "flip_code"]

#: accumulator word width used for psum-site flips (wider than the 16-bit
#: datapath word, matching the wide MAC accumulators of Table 3 designs)
PSUM_BITS = 40


def flip_code(value: int, bit: int, width: int) -> int:
    """Flip ``bit`` of ``value`` within a ``width``-bit two's-complement word.

    The value is reduced to its low ``width`` bits, the bit is XORed, and
    the result is sign-extended back to a Python int — exactly what a
    single-event upset does to a stored word.
    """
    if not 0 <= bit < width:
        raise ConfigError(f"bit {bit} out of range for {width}-bit word")
    mask = (1 << width) - 1
    word = (int(value) & mask) ^ (1 << bit)
    if word >= 1 << (width - 1):  # sign bit set: two's-complement wrap
        word -= 1 << width
    return word


@dataclass(frozen=True)
class FlipEvent:
    """One realised bit flip: where it landed and what it changed."""

    site: str
    flat_index: int
    bit: int
    before: int
    after: int
    step: int = -1

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "flat_index": self.flat_index,
            "bit": self.bit,
            "before": self.before,
            "after": self.after,
            "step": self.step,
        }


class SDCInjector:
    """Realises :class:`BitFlipFault` descriptors at the conv hook sites.

    ``word_bits`` bounds activation/weight/output flips (stored words);
    psum flips use the wide :data:`PSUM_BITS` accumulator.  Fault indices
    and steps are taken modulo the live tensor size / step count, so one
    seeded fault family is valid for every layer geometry.
    """

    def __init__(self, faults: Iterable[BitFlipFault], word_bits: int = 16):
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, BitFlipFault):
                raise ConfigError(f"expected BitFlipFault, got {fault!r}")
        if not 2 <= word_bits <= 64:
            raise ConfigError(f"word_bits must be in [2, 64], got {word_bits!r}")
        self.word_bits = word_bits
        self._pending: Dict[str, List[BitFlipFault]] = {
            site: [f for f in faults if f.site == site] for site in BITFLIP_SITES
        }
        self.events: List[FlipEvent] = []

    @property
    def fired(self) -> Tuple[FlipEvent, ...]:
        return tuple(self.events)

    @property
    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def _flip_into(
        self, array: np.ndarray, fault: BitFlipFault, width: int, step: int = -1
    ) -> None:
        if not np.issubdtype(array.dtype, np.integer):
            raise ConfigError(
                f"bit flips need an integer-code tensor, got dtype {array.dtype}"
            )
        flat = array.reshape(-1)
        idx = fault.index % flat.size
        bit = fault.bit % width
        before = int(flat[idx])
        after = flip_code(before, bit, width)
        flat[idx] = after
        self.events.append(
            FlipEvent(
                site=fault.site,
                flat_index=idx,
                bit=bit,
                before=before,
                after=after,
                step=step,
            )
        )

    def _consume(self, site: str) -> List[BitFlipFault]:
        taken = self._pending[site]
        self._pending[site] = []
        return taken

    def on_activation(self, data: np.ndarray) -> np.ndarray:
        faults = self._consume("activation")
        if not faults:
            return data
        data = data.copy()
        for fault in faults:
            self._flip_into(data, fault, self.word_bits)
        return data

    def on_weight(self, weights: np.ndarray) -> np.ndarray:
        faults = self._consume("weight")
        if not faults:
            return weights
        weights = weights.copy()
        for fault in faults:
            self._flip_into(weights, fault, self.word_bits)
        return weights

    def on_psum(self, acc: np.ndarray, step: int, steps_total: int) -> None:
        remaining = []
        for fault in self._pending["psum"]:
            if fault.step % steps_total == step:
                self._flip_into(acc, fault, PSUM_BITS, step=step)
            else:
                remaining.append(fault)
        self._pending["psum"] = remaining

    def on_output(self, out: np.ndarray) -> None:
        for fault in self._consume("output"):
            self._flip_into(out, fault, self.word_bits)
