"""ABFT-checksummed convolution: predict, check, localize, recompute.

Huang-Abraham algorithm-based fault tolerance, adapted from matrix
multiply to convolution.  For each output map ``oc`` the scheme predicts
three checksums *before* the convolution runs, from reductions of the
input and the weights alone:

* ``row[oc, oy]``   — the sum over ``ox`` of output row ``oy``;
* ``col[oc, ox]``   — the sum over ``oy`` of output column ``ox``;
* ``total[oc]``     — the sum of the whole map.

Convolution is linear, so each predicted row sum is itself a (1-D)
convolution of column-reduced input with the weights — ``k*(oy+ox)``
extra dot products per map instead of a full second execution.  After the
scheme path runs, the same sums are taken over the *computed* output and
compared.  Everything happens in the fixed-point integer-code domain of
:mod:`repro.sim.datapath`: integer addition is associative and exact, so
the comparison is exact equality and a clean run can never false-positive
(a float checksum would trip on summation-order differences between
schemes — the very differences this repo exists to study).

A mismatch localizes the damage: the flagged (map, row, column) triple of
a single-element corruption (psum or output-stage flip) pins it to at
most two rows, which are recomputed directly from the clean operands; a
wide corruption (activation/weight flip smears across a window of rows
and columns) triggers a whole-map recompute.  Recompute is cheap for the
partition scheme precisely because Algorithm 1's ``g*g`` sub-kernels are
independent — re-executing a row touches only the sub-windows that cover
it.  :func:`verified_conv` packages the whole detect-and-recompute loop
and guarantees the recovered output is bit-identical to
:func:`~repro.sim.functional.reference_conv` on the same codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.arch.fixedpoint import FixedPointFormat, Q7_8, quantize
from repro.errors import ConfigError
from repro.integrity.sdc import SDCInjector
from repro.nn.layers import conv_output_hw
from repro.sim.backend import conv_window_view, resolve_backend
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    reference_conv,
)
from repro.tiling.unroll import pad_input

__all__ = [
    "ABFT_PATHS",
    "Checksums",
    "CheckReport",
    "RecoveryReport",
    "VerifiedConvResult",
    "predicted_checksums",
    "check_output",
    "quantize_conv_operands",
    "recompute_flagged",
    "verified_conv",
    "golden_codes",
]

#: scheme execution paths the verified convolution can drive
ABFT_PATHS = ("partition", "im2col", "inter")

_PATH_FNS = {
    "partition": conv_via_partition,
    "im2col": conv_via_im2col,
    "inter": conv_via_inter_improved,
}


def quantize_conv_operands(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    fmt: FixedPointFormat = Q7_8,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Quantize (data, weights, bias) to the integer-code domain.

    Bias codes are pre-aligned to the accumulator scale (``<< frac_bits``),
    matching :mod:`repro.sim.datapath`, so adding them to raw products is
    exact.  Tensors that are already integer are passed through untouched.
    """
    data_codes = (
        data.astype(np.int64)
        if np.issubdtype(data.dtype, np.integer)
        else quantize(data, fmt)
    )
    weight_codes = (
        weights.astype(np.int64)
        if np.issubdtype(weights.dtype, np.integer)
        else quantize(weights, fmt)
    )
    bias_codes: Optional[np.ndarray] = None
    if bias is not None:
        bias_codes = (
            bias.astype(np.int64)
            if np.issubdtype(bias.dtype, np.integer)
            else quantize(bias, fmt) << fmt.frac_bits
        )
    return data_codes, weight_codes, bias_codes


@dataclass(frozen=True)
class Checksums:
    """Predicted per-map row/column/total sums, in the integer-code domain."""

    row: np.ndarray  # (Dout, oh)
    col: np.ndarray  # (Dout, ow)
    total: np.ndarray  # (Dout,)

    @property
    def extra_macs(self) -> int:
        """Dot-product MACs the prediction cost (for overhead accounting)."""
        return int(self.row.size + self.col.size)


def predicted_checksums(
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    backend: Optional[str] = None,
) -> Checksums:
    """Predict the output checksums from input/weight reductions alone.

    The input is column-reduced (summed over the ``ox`` positions each
    kernel column touches) and row-reduced likewise; one small einsum per
    group then yields every row/column sum.  All in int64 — exact on
    either backend (the ``vector`` backend gathers the same reductions
    through strided window views instead of per-kernel-element loops;
    integer sums are order-independent, so the checksums are identical).
    """
    if not np.issubdtype(data_codes.dtype, np.integer) or not np.issubdtype(
        weight_codes.dtype, np.integer
    ):
        raise ConfigError("ABFT checksums require integer-code tensors")
    dout = weight_codes.shape[0]
    k = weight_codes.shape[-1]
    s = stride
    din_g = data_codes.shape[0] // groups
    dout_g = dout // groups
    oh = conv_output_hw(data_codes.shape[1] + 2 * pad, k, s, 0)
    ow = conv_output_hw(data_codes.shape[2] + 2 * pad, k, s, 0)
    row = np.zeros((dout, oh), dtype=np.int64)
    col = np.zeros((dout, ow), dtype=np.int64)
    vector = resolve_backend(backend) == "vector"
    for g in range(groups):
        dslice = data_codes[g * din_g : (g + 1) * din_g].astype(np.int64)
        padded = pad_input(dslice, pad)
        w_g = weight_codes[g * dout_g : (g + 1) * dout_g].astype(np.int64)
        if vector:
            # colsum[d, h, v] = sum_ox padded[d, h, v + ox*s], via one
            # window view over the W axis instead of a per-v loop
            cwin = sliding_window_view(padded, k, axis=2)  # [d, h, x, v]
            colsum = cwin[:, :, : (ow - 1) * s + 1 : s].sum(axis=2, dtype=np.int64)
            # sr[oy, d, u, v] = colsum[d, u + oy*s, v]
            rwin = sliding_window_view(colsum, k, axis=1)  # [d, y, v, u]
            sr = rwin[:, : (oh - 1) * s + 1 : s].transpose(1, 0, 3, 2)
        else:
            # column reduction: colsum[d, h, v] = sum_ox padded[d, h, v + ox*s]
            colsum = np.empty((din_g, padded.shape[1], k), dtype=np.int64)
            for v in range(k):
                colsum[:, :, v] = padded[:, :, v : v + (ow - 1) * s + 1 : s].sum(
                    axis=2
                )
            # gather the rows each (oy, u) pair reads: SR[oy, d, u, v]
            sr = np.empty((oh, din_g, k, k), dtype=np.int64)
            for u in range(k):
                sr[:, :, u, :] = colsum[:, u : u + (oh - 1) * s + 1 : s, :].transpose(
                    1, 0, 2
                )
        row[g * dout_g : (g + 1) * dout_g] = np.einsum("yduv,oduv->oy", sr, w_g)
        if vector:
            # rowsum gathered as [d, w, u]; sc[ox, d, u, v] = rowsum[d, u, v + ox*s]
            hwin = sliding_window_view(padded, k, axis=1)  # [d, y, w, u]
            rowsum = hwin[:, : (oh - 1) * s + 1 : s].sum(axis=1, dtype=np.int64)
            swin = sliding_window_view(rowsum, k, axis=1)  # [d, x, u, v]
            sc = swin[:, : (ow - 1) * s + 1 : s].transpose(1, 0, 2, 3)
        else:
            # row reduction: rowsum[d, u, w] = sum_oy padded[d, u + oy*s, w]
            rowsum = np.empty((din_g, k, padded.shape[2]), dtype=np.int64)
            for u in range(k):
                rowsum[:, u, :] = padded[:, u : u + (oh - 1) * s + 1 : s, :].sum(
                    axis=1
                )
            sc = np.empty((ow, din_g, k, k), dtype=np.int64)
            for v in range(k):
                sc[:, :, :, v] = rowsum[:, :, v : v + (ow - 1) * s + 1 : s].transpose(
                    2, 0, 1
                )
        col[g * dout_g : (g + 1) * dout_g] = np.einsum("xduv,oduv->ox", sc, w_g)
    if bias_codes is not None:
        b = bias_codes.astype(np.int64)
        row += b[:, None] * ow
        col += b[:, None] * oh
    return Checksums(row=row, col=col, total=row.sum(axis=1))


@dataclass(frozen=True)
class CheckReport:
    """Computed-vs-predicted comparison: which maps/rows/columns disagree."""

    clean: bool
    flagged_maps: Tuple[int, ...]
    flagged_rows: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    flagged_cols: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def mismatches(self) -> int:
        return sum(len(v) for v in self.flagged_rows.values()) + sum(
            len(v) for v in self.flagged_cols.values()
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "flagged_maps": list(self.flagged_maps),
            "flagged_rows": {str(m): list(r) for m, r in self.flagged_rows.items()},
            "flagged_cols": {str(m): list(c) for m, c in self.flagged_cols.items()},
        }


def check_output(output_codes: np.ndarray, predicted: Checksums) -> CheckReport:
    """Compare the computed output's sums against the predicted checksums."""
    if not np.issubdtype(output_codes.dtype, np.integer):
        raise ConfigError("ABFT check requires an integer-code output")
    actual_row = output_codes.sum(axis=2, dtype=np.int64)
    actual_col = output_codes.sum(axis=1, dtype=np.int64)
    actual_total = actual_row.sum(axis=1)
    row_bad = actual_row != predicted.row
    col_bad = actual_col != predicted.col
    total_bad = actual_total != predicted.total
    map_bad = row_bad.any(axis=1) | col_bad.any(axis=1) | total_bad
    flagged = tuple(int(m) for m in np.flatnonzero(map_bad))
    rows = {
        m: tuple(int(r) for r in np.flatnonzero(row_bad[m])) for m in flagged
    }
    cols = {
        m: tuple(int(c) for c in np.flatnonzero(col_bad[m])) for m in flagged
    }
    return CheckReport(
        clean=not flagged, flagged_maps=flagged, flagged_rows=rows, flagged_cols=cols
    )


@dataclass(frozen=True)
class RecoveryReport:
    """What detect-and-recompute re-executed, and whether it converged."""

    row_recomputes: int
    map_recomputes: int
    recomputed: Tuple[Tuple[int, int], ...]  # (map, row) pairs; row -1 = whole map
    clean_after: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "row_recomputes": self.row_recomputes,
            "map_recomputes": self.map_recomputes,
            "clean_after": self.clean_after,
        }


#: a single-element corruption flags at most this many rows/columns; more
#: means the damage smeared (operand flip) and the whole map is recomputed
_LOCAL_LIMIT = 2


def _recompute_row(
    out: np.ndarray,
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray],
    stride: int,
    pad: int,
    groups: int,
    oc: int,
    oy: int,
) -> None:
    """Re-execute one output row of one map from the clean operands."""
    dout = weight_codes.shape[0]
    k = weight_codes.shape[-1]
    din_g = data_codes.shape[0] // groups
    dout_g = dout // groups
    g = oc // dout_g
    padded = pad_input(data_codes[g * din_g : (g + 1) * din_g], pad)
    kern = weight_codes[oc]
    iy = oy * stride
    ow = out.shape[2]
    for ox in range(ow):
        ix = ox * stride
        patch = padded[:, iy : iy + k, ix : ix + k]
        out[oc, oy, ox] = np.sum(patch * kern, dtype=np.int64)
    if bias_codes is not None:
        out[oc, oy, :] += bias_codes[oc]


def _recompute_rows(
    out: np.ndarray,
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray],
    stride: int,
    pad: int,
    groups: int,
    oc: int,
    rows,
    backend: Optional[str] = None,
) -> None:
    """Re-execute a batch of output rows of one map from the clean operands.

    The ``loop`` backend recomputes pixel by pixel (the oracle); ``vector``
    gathers every flagged row's windows through one strided view and runs a
    single einsum — bit-identical in the integer-code domain.
    """
    rows_arr = np.asarray(list(rows), dtype=np.intp)
    if rows_arr.size == 0:
        return
    if resolve_backend(backend) != "vector":
        for oy in rows_arr:
            _recompute_row(
                out,
                data_codes,
                weight_codes,
                bias_codes,
                stride,
                pad,
                groups,
                oc,
                int(oy),
            )
        return
    dout = weight_codes.shape[0]
    k = weight_codes.shape[-1]
    din_g = data_codes.shape[0] // groups
    dout_g = dout // groups
    g = oc // dout_g
    padded = pad_input(data_codes[g * din_g : (g + 1) * din_g], pad)
    win = conv_window_view(padded, k, stride, out.shape[1], out.shape[2])
    fresh = np.einsum("dyxuv,duv->yx", win[:, rows_arr], weight_codes[oc])
    if bias_codes is not None:
        fresh = fresh + bias_codes[oc]
    out[oc, rows_arr] = fresh


def recompute_flagged(
    out: np.ndarray,
    report: CheckReport,
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray],
    predicted: Checksums,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    backend: Optional[str] = None,
) -> RecoveryReport:
    """Recompute the damage `report` localized, in place, and re-check.

    Transient-fault model: the stored operands are clean (a re-read gets
    good data), so re-executing flagged work from them restores the exact
    reference result.
    """
    row_recomputes = 0
    map_recomputes = 0
    recomputed = []
    for oc in report.flagged_maps:
        rows = report.flagged_rows.get(oc, ())
        cols = report.flagged_cols.get(oc, ())
        local = (
            0 < len(rows) <= _LOCAL_LIMIT and 0 < len(cols) <= _LOCAL_LIMIT
        )
        target_rows = rows if local else range(out.shape[1])
        if local:
            row_recomputes += len(target_rows)
            recomputed.extend((oc, oy) for oy in target_rows)
        else:
            map_recomputes += 1
            recomputed.append((oc, -1))
        _recompute_rows(
            out,
            data_codes,
            weight_codes,
            bias_codes,
            stride,
            pad,
            groups,
            oc,
            target_rows,
            backend,
        )
    after = check_output(out, predicted)
    if not after.clean:
        # the local repair under-reached: a corrupted row whose net change
        # cancelled was never flagged.  Escalate to whole-map recompute.
        for oc in after.flagged_maps:
            map_recomputes += 1
            recomputed.append((oc, -1))
            _recompute_rows(
                out,
                data_codes,
                weight_codes,
                bias_codes,
                stride,
                pad,
                groups,
                oc,
                range(out.shape[1]),
                backend,
            )
        after = check_output(out, predicted)
    return RecoveryReport(
        row_recomputes=row_recomputes,
        map_recomputes=map_recomputes,
        recomputed=tuple(recomputed),
        clean_after=after.clean,
    )


@dataclass(frozen=True)
class VerifiedConvResult:
    """Everything one verified convolution produced."""

    output: np.ndarray  # corrected integer codes (accumulator scale)
    raw_output: np.ndarray  # as computed, before any recompute
    predicted: Checksums
    check: CheckReport
    recovery: Optional[RecoveryReport]
    path: str

    @property
    def detected(self) -> bool:
        return not self.check.clean

    @property
    def corrected(self) -> bool:
        return self.recovery is not None and self.recovery.clean_after


def verified_conv(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    path: str = "partition",
    fmt: FixedPointFormat = Q7_8,
    inject: Optional[SDCInjector] = None,
    backend: Optional[str] = None,
) -> VerifiedConvResult:
    """Run one convolution under the ABFT guard, recovering any corruption.

    Operands are quantized to integer codes (pre-quantized integer tensors
    pass through), checksums are predicted, the chosen scheme ``path``
    executes (optionally under ``inject``), the output is checked, and any
    flagged rows/maps are recomputed from the clean operands.  The returned
    ``output`` is in the wide-accumulator code domain, bit-identical to
    ``reference_conv`` on the same codes whenever recovery converged (or
    the run was clean).
    """
    if path not in _PATH_FNS:
        raise ConfigError(f"unknown ABFT path {path!r}; expected one of {ABFT_PATHS}")
    data_codes, weight_codes, bias_codes = quantize_conv_operands(
        data, weights, bias, fmt
    )
    predicted = predicted_checksums(
        data_codes, weight_codes, bias_codes, stride, pad, groups, backend
    )
    raw = _PATH_FNS[path](
        data_codes,
        weight_codes,
        bias_codes,
        stride=stride,
        pad=pad,
        groups=groups,
        inject=inject,
        backend=backend,
    )
    report = check_output(raw, predicted)
    recovery: Optional[RecoveryReport] = None
    out = raw
    if not report.clean:
        out = raw.copy()
        recovery = recompute_flagged(
            out,
            report,
            data_codes,
            weight_codes,
            bias_codes,
            predicted,
            stride=stride,
            pad=pad,
            groups=groups,
            backend=backend,
        )
    return VerifiedConvResult(
        output=out,
        raw_output=raw,
        predicted=predicted,
        check=report,
        recovery=recovery,
        path=path,
    )


def golden_codes(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    fmt: FixedPointFormat = Q7_8,
    backend: Optional[str] = None,
) -> np.ndarray:
    """The reference convolution on the quantized codes — the recovery target."""
    data_codes, weight_codes, bias_codes = quantize_conv_operands(
        data, weights, bias, fmt
    )
    return reference_conv(
        data_codes,
        weight_codes,
        bias_codes,
        stride=stride,
        pad=pad,
        groups=groups,
        backend=backend,
    )
