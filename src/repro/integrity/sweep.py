"""The integrity benchmark sweep behind ``repro integrity``.

Injects seeded single bit flips at every (layer, scheme path, buffer
site) combination, runs each under :func:`~repro.integrity.abft.
verified_conv`, and scores the guard against the golden reference:

* **detection rate** — flagged runs / runs whose raw output actually
  differed from the golden codes (a flip into an unused input margin or
  a masked low bit corrupts nothing and is counted separately);
* **false-positive rate** — flagged clean (uninjected) runs / clean
  runs, which the integer-exact checksum design pins at zero;
* **corrected fraction** — detected runs whose recovered output is
  bit-identical to the golden reference;
* **overhead** — the scheme-level cost model's verified-vs-unverified
  latency ratio per layer (:func:`repro.schemes.abft.abft_overhead`).

Everything derives from the seed: operand tensors, fault indices/bits,
and the rollup's float fields are rounded — so the JSON is byte-stable
across repeated runs, which ``bench_integrity.py`` asserts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.config import CONFIG_16_16, AcceleratorConfig
from repro.errors import ScheduleError
from repro.integrity.abft import ABFT_PATHS, golden_codes, verified_conv
from repro.integrity.sdc import SDCInjector
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import LayerContext
from repro.resilience.faults import BITFLIP_SITES, seeded_bitflips
from repro.schemes import make_scheme
from repro.schemes.abft import abft_overhead
from repro.serve.metrics import to_json
from repro.sim.backend import resolve_backend
from repro.sim.functional import random_conv_tensors

__all__ = ["SWEEP_LAYERS", "run_sweep", "sweep_to_json"]

#: (name, k, s, pad, groups, din, dout, hw) — chosen to cover odd/even
#: kernels, stride > 1, stride >= kernel (partition fallback), pad > 0,
#: and grouped convolution, at sizes that keep the sweep fast
SWEEP_LAYERS: Tuple[Tuple[str, int, int, int, int, int, int, int], ...] = (
    ("k11-s4", 11, 4, 0, 1, 3, 8, 35),
    ("k3-pad1", 3, 1, 1, 1, 4, 8, 14),
    ("k2-even", 2, 1, 0, 1, 4, 6, 12),
    ("k5-s2-grouped", 5, 2, 1, 2, 4, 8, 16),
    ("k2-s3-fallback", 2, 3, 0, 1, 3, 6, 13),
)


def _site_tally() -> Dict[str, int]:
    return {
        "injections": 0,
        "fired": 0,
        "skipped": 0,
        "corrupted": 0,
        "masked": 0,
        "detected": 0,
        "corrected": 0,
        "escaped": 0,
    }


def _layer_overhead(
    layer: ConvLayer, in_shape: TensorShape, config: AcceleratorConfig
) -> Optional[Dict[str, object]]:
    ctx = LayerContext(layer, in_shape, layer.output_shape(in_shape))
    for scheme_name in ("partition", "inter-improved"):
        try:
            base = make_scheme(scheme_name).schedule(ctx, config)
        except ScheduleError:
            continue
        return abft_overhead(ctx, config, base).to_dict()
    return None


def run_sweep(
    seed: int = 0,
    flips_per_site: int = 4,
    smoke: bool = False,
    config: AcceleratorConfig = CONFIG_16_16,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Run the full injection sweep and return the byte-stable rollup.

    ``backend`` picks the functional-simulator execution (see
    :mod:`repro.sim.backend`); every tally and the recovered outputs are
    bit-identical across backends, so the rollup differs only in the
    recorded ``backend`` field.
    """
    backend = resolve_backend(backend)
    layer_specs = SWEEP_LAYERS[:3] if smoke else SWEEP_LAYERS
    if smoke:
        flips_per_site = min(flips_per_site, 2)
    sites: Dict[str, Dict[str, int]] = {s: _site_tally() for s in BITFLIP_SITES}
    paths: Dict[str, Dict[str, int]] = {p: _site_tally() for p in ABFT_PATHS}
    layers = []
    clean_runs = 0
    false_positives = 0
    recovery_mismatches = 0
    for li, (name, k, s, pad, groups, din, dout, hw) in enumerate(layer_specs):
        layer = ConvLayer(
            name, in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad,
            groups=groups,
        )
        in_shape = TensorShape(din, hw, hw)
        data, weights, bias = random_conv_tensors(
            layer, in_shape, seed=seed * 1009 + li
        )
        golden = golden_codes(
            data, weights, bias, stride=s, pad=pad, groups=groups, backend=backend
        )
        for pi, path in enumerate(ABFT_PATHS):
            # clean run: the zero-false-positive claim is checked here
            clean = verified_conv(
                data,
                weights,
                bias,
                stride=s,
                pad=pad,
                groups=groups,
                path=path,
                backend=backend,
            )
            clean_runs += 1
            if clean.detected:
                false_positives += 1
            if not np.array_equal(clean.output, golden):
                recovery_mismatches += 1
            for si, site in enumerate(BITFLIP_SITES):
                for fi in range(flips_per_site):
                    fault_seed = (
                        seed * 100003 + li * 10007 + pi * 1009 + si * 101 + fi
                    )
                    fault = seeded_bitflips(fault_seed, 1, sites=(site,))[0]
                    injector = SDCInjector([fault])
                    result = verified_conv(
                        data,
                        weights,
                        bias,
                        stride=s,
                        pad=pad,
                        groups=groups,
                        path=path,
                        inject=injector,
                        backend=backend,
                    )
                    for tally in (sites[site], paths[path]):
                        tally["injections"] += 1
                    if not injector.events:
                        # e.g. a psum fault on the stride>=kernel fallback,
                        # which has no multi-piece accumulator to corrupt
                        for tally in (sites[site], paths[path]):
                            tally["skipped"] += 1
                        continue
                    corrupted = not np.array_equal(result.raw_output, golden)
                    recovered = np.array_equal(result.output, golden)
                    for tally in (sites[site], paths[path]):
                        tally["fired"] += 1
                        if not corrupted:
                            tally["masked"] += 1
                            continue
                        tally["corrupted"] += 1
                        if result.detected:
                            tally["detected"] += 1
                            if recovered:
                                tally["corrected"] += 1
                        else:
                            tally["escaped"] += 1
                    if corrupted and result.detected and not recovered:
                        recovery_mismatches += 1
        layers.append(
            {
                "name": name,
                "kernel": k,
                "stride": s,
                "pad": pad,
                "groups": groups,
                "in_maps": din,
                "out_maps": dout,
                "hw": hw,
                "overhead": _layer_overhead(layer, in_shape, config),
            }
        )
    total = _site_tally()
    for tally in sites.values():
        for key in total:
            total[key] += tally[key]
    ratios = [
        layer["overhead"]["latency_ratio"]
        for layer in layers
        if layer["overhead"] is not None
    ]
    headline = {
        "injections": total["injections"],
        "fired": total["fired"],
        "skipped": total["skipped"],
        "corrupted": total["corrupted"],
        "masked": total["masked"],
        "detected": total["detected"],
        "escaped": total["escaped"],
        "detection_rate": round(
            total["detected"] / total["corrupted"] if total["corrupted"] else 1.0, 6
        ),
        "corrected_fraction": round(
            total["corrected"] / total["detected"] if total["detected"] else 1.0, 6
        ),
        "clean_runs": clean_runs,
        "false_positives": false_positives,
        "false_positive_rate": round(
            false_positives / clean_runs if clean_runs else 0.0, 6
        ),
        "recovery_bit_identical": recovery_mismatches == 0,
        "mean_latency_ratio": round(sum(ratios) / len(ratios), 6) if ratios else None,
    }
    return {
        "seed": seed,
        "smoke": smoke,
        "flips_per_site": flips_per_site,
        "config": config.name,
        "backend": backend,
        "layers": layers,
        "sites": sites,
        "paths": paths,
        "headline": headline,
    }


def sweep_to_json(rollup: Dict[str, object]) -> str:
    """Canonical byte-stable JSON encoding of a sweep rollup."""
    return to_json(rollup)
