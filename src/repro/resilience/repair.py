"""Cluster repair: losing a pipeline chip → rebalance over the survivors.

A layer-pipelined deployment (:mod:`repro.cluster.pipeline`) that loses a
chip has two problems: the stage that died must run somewhere, and the
remaining stages are now unbalanced.  Repair re-runs the DP bottleneck
balancer over the surviving chip count — the same
:func:`~repro.cluster.pipeline.partition_dp` used at deployment time — and
charges the *cost of getting there*: every layer whose physical chip
changed must have its weights re-shipped, and that traffic goes through
the same :class:`~repro.cluster.link.LinkSpec` that prices the steady-state
activation handoffs.

The output distinguishes the one-time cost (``rebalance_s``, the outage
contribution) from the permanent cost (``throughput_ratio``, the repaired
pipeline's throughput relative to healthy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.cluster.link import LinkSpec
from repro.cluster.pipeline import PipelinePlan, plan_pipeline
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = ["RepairPlan", "repair_pipeline"]


@dataclass(frozen=True)
class RepairPlan:
    """A healthy pipeline, the post-loss rebalance, and the bill for it."""

    network: str
    lost_chips: Tuple[int, ...]
    surviving_chips: Tuple[int, ...]
    healthy: PipelinePlan
    repaired: PipelinePlan
    #: layers whose physical chip changed (weights must be re-shipped)
    moved_layers: Tuple[str, ...]
    rebalance_bytes: int
    rebalance_s: float

    @property
    def throughput_ratio(self) -> float:
        """Repaired over healthy steady-state throughput (<= 1)."""
        healthy_ips = self.healthy.throughput_ips
        return self.repaired.throughput_ips / healthy_ips if healthy_ips else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "network": self.network,
            "lost_chips": list(self.lost_chips),
            "surviving_chips": list(self.surviving_chips),
            "healthy_chips": self.healthy.n_chips,
            "healthy_bottleneck_ms": round(self.healthy.bottleneck_s * 1e3, 6),
            "healthy_throughput_ips": round(self.healthy.throughput_ips, 6),
            "repaired_bottleneck_ms": round(self.repaired.bottleneck_s * 1e3, 6),
            "repaired_throughput_ips": round(self.repaired.throughput_ips, 6),
            "throughput_ratio": round(self.throughput_ratio, 6),
            "moved_layers": list(self.moved_layers),
            "rebalance_bytes": self.rebalance_bytes,
            "rebalance_ms": round(self.rebalance_s * 1e3, 6),
        }


def repair_pipeline(
    net: Network,
    config: AcceleratorConfig,
    n_chips: int,
    lost_chips: Sequence[int],
    link: LinkSpec = LinkSpec(),
    policy: str = "adaptive-2",
    include_non_conv: bool = True,
) -> RepairPlan:
    """Rebalance an ``n_chips`` pipeline after losing ``lost_chips``.

    The repaired partition is planned from scratch over the survivor
    count (DP is cheap; the optimal cut set for N-1 chips is not a local
    edit of the N-chip one).  Stage ``i`` of the repaired pipeline runs on
    the ``i``-th surviving chip in id order; any layer whose physical home
    changed — including every layer of a lost chip — is charged one weight
    shipment over the link, serialized (one host link re-seeds weights).
    """
    lost = sorted(set(lost_chips))
    if not lost:
        raise ConfigError("repair needs at least one lost chip")
    for chip in lost:
        if isinstance(chip, bool) or not isinstance(chip, int):
            raise ConfigError(f"lost chip id must be an int, got {chip!r}")
        if not 0 <= chip < n_chips:
            raise ConfigError(
                f"lost chip {chip} out of range for a {n_chips}-chip pipeline"
            )
    survivors = tuple(c for c in range(n_chips) if c not in lost)
    if not survivors:
        raise ConfigError(
            f"all {n_chips} chips lost; nothing left to rebalance onto"
        )
    healthy = plan_pipeline(
        net, config, n_chips, link=link, policy=policy,
        strategy="dp", include_non_conv=include_non_conv,
    )
    repaired = plan_pipeline(
        net, config, len(survivors), link=link, policy=policy,
        strategy="dp", include_non_conv=include_non_conv,
    )

    old_home: Dict[str, int] = {}
    for stage in healthy.stages:
        for name in stage.layer_names:
            old_home[name] = stage.chip
    moved: List[str] = []
    for stage in repaired.stages:
        physical = survivors[stage.chip]
        for name in stage.layer_names:
            if old_home[name] != physical:
                moved.append(name)

    weight_words = {ctx.name: ctx.weights for ctx in net.contexts()}
    rebalance_bytes = sum(
        weight_words[name] * config.word_bytes for name in moved
    )
    rebalance_s = sum(
        link.transfer_seconds(weight_words[name] * config.word_bytes)
        for name in moved
        if weight_words[name]
    )
    return RepairPlan(
        network=net.name,
        lost_chips=tuple(lost),
        surviving_chips=survivors,
        healthy=healthy,
        repaired=repaired,
        moved_layers=tuple(moved),
        rebalance_bytes=rebalance_bytes,
        rebalance_s=rebalance_s,
    )
