"""Fault injection, degraded-mode replanning, and failover (``repro chaos``).

The paper's accelerator is evaluated healthy; this package asks what the
stack does when hardware misbehaves, reusing the planning machinery
instead of inventing new models:

- :mod:`repro.resilience.faults` — seeded, deterministic fault schedules:
  replica fail-stop/fail-slow, inter-chip link degradation windows, and
  PE row/column masks;
- :mod:`repro.resilience.degrade` — a PE mask shrinks the effective
  ``Tin x Tout`` array; Algorithm 2 and the planner re-run at the new
  geometry through the schedule cache, reporting scheme flips and the
  latency bill;
- :mod:`repro.resilience.repair` — a pipelined deployment that loses a
  chip re-runs the DP bottleneck balancer over the survivors, with the
  weight re-shipment charged through the link model;
- :mod:`repro.resilience.scenarios` — named chaos scenarios pairing a
  fault schedule with a serving workload: the same seeded requests run
  healthy and faulted through :class:`~repro.serve.failover.FailoverEngine`,
  reduced to availability, goodput-under-fault, MTTR and latency ratios
  as byte-stable JSON.

See ``docs/resilience.md`` for the fault taxonomy and the rollup glossary.
"""

from repro.resilience.degrade import (
    DegradeReport,
    SchemeFlip,
    degraded_config,
    replan_degraded,
)
from repro.resilience.faults import (
    FaultSchedule,
    LinkFault,
    PEMask,
    ReplicaFault,
    flapping_link,
)
from repro.resilience.repair import RepairPlan, repair_pipeline
from repro.resilience.scenarios import (
    SCENARIO_NAMES,
    ChaosScenario,
    build_scenario,
    rollup_to_json,
    run_scenario,
)

__all__ = [
    "ChaosScenario",
    "DegradeReport",
    "FaultSchedule",
    "LinkFault",
    "PEMask",
    "RepairPlan",
    "ReplicaFault",
    "SCENARIO_NAMES",
    "SchemeFlip",
    "build_scenario",
    "degraded_config",
    "flapping_link",
    "repair_pipeline",
    "replan_degraded",
    "rollup_to_json",
    "run_scenario",
]
