"""Fault injection, degraded-mode replanning, and failover (``repro chaos``).

The paper's accelerator is evaluated healthy; this package asks what the
stack does when hardware misbehaves, reusing the planning machinery
instead of inventing new models:

- :mod:`repro.resilience.faults` — seeded, deterministic fault schedules:
  replica fail-stop/fail-slow, inter-chip link degradation windows, PE
  row/column masks, single-bit-flip families for the functional datapath
  (realised by :mod:`repro.integrity`), and serving-tier silent-data-
  corruption windows;
- :mod:`repro.resilience.degrade` — a PE mask shrinks the effective
  ``Tin x Tout`` array; Algorithm 2 and the planner re-run at the new
  geometry through the schedule cache, reporting scheme flips and the
  latency bill;
- :mod:`repro.resilience.repair` — a pipelined deployment that loses a
  chip re-runs the DP bottleneck balancer over the survivors, with the
  weight re-shipment charged through the link model;
- :mod:`repro.resilience.scenarios` — named chaos scenarios pairing a
  fault schedule with a serving workload: the same seeded requests run
  healthy and faulted through :class:`~repro.serve.failover.FailoverEngine`,
  reduced to availability, goodput-under-fault, MTTR and latency ratios
  as byte-stable JSON.

See ``docs/resilience.md`` for the fault taxonomy and the rollup glossary.
"""

from repro.resilience.degrade import (
    DegradeReport,
    SchemeFlip,
    degraded_config,
    geometry_flips,
    replan_degraded,
)
from repro.resilience.faults import (
    BITFLIP_SITES,
    BitFlipFault,
    FaultSchedule,
    LinkFault,
    MaskFault,
    PEMask,
    ReplicaFault,
    SDCFault,
    flapping_link,
    seeded_bitflips,
)
from repro.resilience.repair import RepairPlan, repair_pipeline
from repro.resilience.scenarios import (
    INVARIANT_NAMES,
    SCENARIO_NAMES,
    ChaosScenario,
    build_scenario,
    rollup_to_json,
    run_scenario,
)

__all__ = [
    "BITFLIP_SITES",
    "BitFlipFault",
    "ChaosScenario",
    "DegradeReport",
    "FaultSchedule",
    "INVARIANT_NAMES",
    "LinkFault",
    "MaskFault",
    "PEMask",
    "RepairPlan",
    "ReplicaFault",
    "SCENARIO_NAMES",
    "SDCFault",
    "SchemeFlip",
    "build_scenario",
    "degraded_config",
    "geometry_flips",
    "flapping_link",
    "repair_pipeline",
    "replan_degraded",
    "rollup_to_json",
    "run_scenario",
    "seeded_bitflips",
]
