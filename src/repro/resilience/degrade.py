"""Degraded-mode replanning: PE mask → smaller array → Algorithm 2 reruns.

Masking PE rows/columns (a manufacturing defect, an aging cell fused off
in the field) shrinks the effective ``Tin x Tout`` array.  The planner
does not need new machinery for this — a degraded chip is just a chip
with a different geometry, so :func:`degraded_config` derives a new
:class:`~repro.arch.config.AcceleratorConfig` via
:meth:`~repro.arch.config.AcceleratorConfig.with_pe` and
:func:`replan_degraded` pushes it back through Algorithm 2 and the
schedule cache (``tin``/``tout`` are part of the cache key, so healthy
and degraded plans never collide).

The interesting output is the *scheme flips*: shrinking ``Tin`` can stop
``Din < Tin`` from holding, flipping a layer from partition-based to
inter-kernel — the adaptive selector absorbing a hardware fault the way
it absorbs network diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.adaptive.planner import choices_for_network, plan_network
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.resilience.faults import PEMask

__all__ = [
    "degraded_config",
    "SchemeFlip",
    "DegradeReport",
    "geometry_flips",
    "replan_degraded",
]


def degraded_config(config: AcceleratorConfig, mask: PEMask) -> AcceleratorConfig:
    """The accelerator with ``mask``'s rows/columns fused off.

    Columns feed inputs (``Tin``), rows are adder trees (``Tout``); the
    derived config is a first-class :class:`AcceleratorConfig`, so caching,
    planning and serving all treat it as just another geometry.
    """
    tin = config.tin - mask.masked_cols
    tout = config.tout - mask.masked_rows
    if tin <= 0:
        raise ConfigError(
            f"mask removes {mask.masked_cols} of {config.tin} PE columns; "
            "at least one input lane must survive"
        )
    if tout <= 0:
        raise ConfigError(
            f"mask removes {mask.masked_rows} of {config.tout} PE rows; "
            "at least one adder tree must survive"
        )
    return config.with_pe(tin, tout)


@dataclass(frozen=True)
class SchemeFlip:
    """One layer whose Algorithm 2 verdict changed under the mask."""

    layer_name: str
    healthy_scheme: str
    degraded_scheme: str
    reason: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "layer": self.layer_name,
            "healthy": self.healthy_scheme,
            "degraded": self.degraded_scheme,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class DegradeReport:
    """Healthy-vs-degraded comparison for one (network, mask) pair."""

    network: str
    policy: str
    mask: PEMask
    healthy_config: AcceleratorConfig
    degraded_cfg: AcceleratorConfig
    flips: Tuple[SchemeFlip, ...]
    healthy_ms: float
    degraded_ms: float

    @property
    def slowdown(self) -> float:
        """Degraded over healthy latency (>= 1 in practice)."""
        return self.degraded_ms / self.healthy_ms if self.healthy_ms else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "network": self.network,
            "policy": self.policy,
            "mask": self.mask.to_dict(),
            "healthy_pe": [self.healthy_config.tin, self.healthy_config.tout],
            "degraded_pe": [self.degraded_cfg.tin, self.degraded_cfg.tout],
            "scheme_flips": [f.to_dict() for f in self.flips],
            "healthy_ms": round(self.healthy_ms, 6),
            "degraded_ms": round(self.degraded_ms, 6),
            "slowdown": round(self.slowdown, 6),
        }


def geometry_flips(
    net: Network,
    base_config: AcceleratorConfig,
    derived_config: AcceleratorConfig,
    policy: str = "adaptive-2",
) -> Tuple[SchemeFlip, ...]:
    """Layers whose Algorithm 2 verdict changes between two geometries.

    The shared core of degraded-mode replanning and chip partitioning
    (:mod:`repro.tenancy`): any *effective geometry* change — PE masks,
    partition carve-outs, buffer reshares — is re-run through the adaptive
    selector, and the interesting output is which layers flipped scheme
    and why.  Both passes go through the schedule cache; distinct configs
    have distinct cache keys, so the base entries are never polluted.
    """
    improved = policy != "adaptive-1"
    base_choices = choices_for_network(net, base_config, improved_inter=improved)
    derived_choices = choices_for_network(
        net, derived_config, improved_inter=improved
    )
    flips: List[SchemeFlip] = []
    for before, after in zip(base_choices, derived_choices):
        if before.scheme != after.scheme:
            flips.append(
                SchemeFlip(
                    layer_name=before.layer_name,
                    healthy_scheme=before.scheme,
                    degraded_scheme=after.scheme,
                    reason=after.reason,
                )
            )
    return tuple(flips)


def replan_degraded(
    net: Network,
    config: AcceleratorConfig,
    mask: PEMask,
    policy: str = "adaptive-2",
    include_non_conv: bool = False,
) -> DegradeReport:
    """Re-run Algorithm 2 and the planner under a PE mask.

    Both passes go through the schedule cache; the degraded config's
    distinct ``tin``/``tout`` give it distinct cache keys, so replanning
    never pollutes the healthy entries (and a repeated chaos sweep hits
    the cache on both sides).
    """
    degraded = degraded_config(config, mask)
    flips = geometry_flips(net, config, degraded, policy)
    healthy_run = plan_network(net, config, policy, include_non_conv=include_non_conv)
    degraded_run = plan_network(net, degraded, policy, include_non_conv=include_non_conv)
    return DegradeReport(
        network=net.name,
        policy=policy,
        mask=mask,
        healthy_config=config,
        degraded_cfg=degraded,
        flips=flips,
        healthy_ms=healthy_run.milliseconds(),
        degraded_ms=degraded_run.milliseconds(),
    )
