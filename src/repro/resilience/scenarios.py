"""Chaos scenarios: one fault schedule + one workload → one rollup dict.

A :class:`ChaosScenario` pins everything a chaos run needs — tenant mix,
arrival rate, replica count, the :class:`~repro.resilience.faults.FaultSchedule`,
failover policy — and :func:`run_scenario` executes the pair of runs that
makes the numbers meaningful: the *same seeded requests* once on a healthy
tier and once under the schedule, both through the
:class:`~repro.serve.failover.FailoverEngine`.  The rollup reports:

* **availability** — completed over offered under fault;
* **goodput under fault** — deadline-met throughput, absolute and relative
  to the healthy run;
* **MTTR** — time from the first crash until windowed goodput recovers to
  the survivor fraction of healthy steady-state goodput;
* **degraded-vs-healthy latency ratios** — p50/p95/p99 under fault over
  healthy;
* optional **degrade** (PE mask → Algorithm 2 replan) and **repair**
  (pipeline chip loss → DP rebalance) sections;
* optional **integrity** section when the scenario carries SDC windows or
  a verification policy: corruption/detection/escape counters, which
  replicas were drained, and the verified-vs-unverified latency ratio
  (measured against an extra verified run on the *healthy* tier, so the
  overhead is isolated from the fault's own damage).

A scenario may also declare **invariants** — named predicates over the
rollup (``zero-escaped``: no corrupted batch escaped the ABFT check;
``sdc-drained``: every SDC-targeted replica ended up drained).  They are
evaluated into ``rollup["invariants"]`` and the ``repro chaos`` CLI exits
non-zero when any is false, which is what makes the CI smoke job an
actual regression gate.

Every number is a deterministic function of (scenario, seed): rendering the
rollup through :func:`repro.serve.metrics.to_json` is byte-stable, and the
runner *raises* if any request fails to terminate — the accounting
invariant ``offered == completed + shed + failed`` is enforced, not hoped
for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import CONFIG_16_16, AcceleratorConfig
from repro.cluster.link import LinkSpec
from repro.cluster.pipeline import plan_pipeline
from repro.errors import ConfigError
from repro.resilience.degrade import replan_degraded
from repro.resilience.faults import FaultSchedule, PEMask, flapping_link
from repro.resilience.repair import repair_pipeline
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.failover import FailoverEngine, FailoverPolicy
from repro.serve.metrics import to_json
from repro.serve.queue import QueuePolicy
from repro.serve.verified import SDCFault, VerificationPolicy
from repro.serve.workload import parse_mix, poisson_arrivals

__all__ = [
    "ChaosScenario",
    "run_scenario",
    "build_scenario",
    "INVARIANT_NAMES",
    "SCENARIO_NAMES",
]

#: invariants a scenario may declare; evaluated into ``rollup["invariants"]``
INVARIANT_NAMES = ("zero-silent-drops", "zero-escaped", "sdc-drained")


@dataclass(frozen=True)
class ChaosScenario:
    """One named, fully-pinned chaos experiment."""

    name: str
    description: str
    schedule: FaultSchedule
    mix: str = "alexnet"
    rate_rps: float = 120.0
    duration_s: float = 4.0
    replicas: int = 3
    seed: int = 1
    routing: str = "least-loaded"
    slo_ms: float = 250.0
    max_batch: int = 8
    failover_policy: FailoverPolicy = field(default_factory=FailoverPolicy)
    #: pipeline context for link faults and chip-loss repair (1 = none)
    chips: int = 1
    lost_chips: Tuple[int, ...] = ()
    link: LinkSpec = field(default_factory=LinkSpec)
    #: goodput-series window for the MTTR scan
    window_s: float = 0.25
    #: per-batch ABFT verification on the faulted tier (None = unguarded)
    verification: Optional[VerificationPolicy] = None
    #: named rollup predicates the CLI turns into exit codes
    invariants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {self.replicas!r}")
        for inv in self.invariants:
            if inv not in INVARIANT_NAMES:
                raise ConfigError(
                    f"unknown invariant {inv!r}; choose from {INVARIANT_NAMES}"
                )
        if self.chips <= 0:
            raise ConfigError(f"chips must be positive, got {self.chips!r}")
        if not self.window_s > 0:
            raise ConfigError(f"window_s must be positive, got {self.window_s!r}")
        if self.schedule.link_faults and self.chips < 2:
            raise ConfigError(
                f"scenario {self.name!r} schedules link faults but has no "
                "inter-chip link (chips < 2)"
            )
        self.schedule.validate_for(self.replicas)

    def meta(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "mix": self.mix,
            "rate_rps": round(self.rate_rps, 6),
            "duration_s": round(self.duration_s, 6),
            "replicas": self.replicas,
            "chips": self.chips,
            "lost_chips": list(self.lost_chips),
            "seed": self.seed,
            "routing": self.routing,
            "slo_ms": round(self.slo_ms, 6),
            "max_batch": self.max_batch,
            "window_ms": round(self.window_s * 1e3, 6),
            "verification": self.verification.describe()
            if self.verification is not None
            else None,
            "invariants": list(self.invariants),
        }


# -- pieces of the rollup ---------------------------------------------------


def _run_digest(summary: Dict[str, object]) -> Dict[str, object]:
    lat = summary["latency_ms"]
    return {
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed": summary["shed"],
        "failed": summary["failed"],
        "failed_by_reason": summary["failed_by_reason"],
        "goodput_rps": summary["goodput_rps"],
        "throughput_rps": summary["throughput_rps"],
        "deadline_hit_rate": summary["deadline_hit_rate"],
        "utilization": summary["utilization"],
        "latency_ms": {
            "p50": lat["p50"],
            "p95": lat["p95"],
            "p99": lat["p99"],
        },
        "makespan_s": summary["makespan_s"],
    }


def _goodput_series(
    records, start_s: float, end_s: float, window_s: float
) -> List[Tuple[float, float]]:
    """(window start, deadline-met completions / window) from ``start_s``."""
    if end_s <= start_s:
        return []
    n_windows = int(math.ceil((end_s - start_s) / window_s))
    counts = [0] * n_windows
    for r in records:
        if not r.met_deadline:
            continue
        k = int((r.finish_s - start_s) // window_s)
        if 0 <= k < n_windows:
            counts[k] += 1
    return [
        (start_s + k * window_s, counts[k] / window_s)
        for k in range(n_windows)
    ]


def _recovery(
    scenario: ChaosScenario,
    schedule: FaultSchedule,
    healthy_summary: Dict[str, object],
    faulted_records,
    faulted_makespan_s: float,
) -> Dict[str, object]:
    """The MTTR scan: when does windowed goodput clear the survivor bar?"""
    first_crash = schedule.first_crash_s()
    crashed = len({f.replica for f in schedule.crashes})
    survivor_frac = (scenario.replicas - crashed) / scenario.replicas
    target = survivor_frac * float(healthy_summary["goodput_rps"])
    out: Dict[str, object] = {
        "first_crash_ms": round(first_crash * 1e3, 6)
        if first_crash is not None
        else None,
        "crashed_replicas": crashed,
        "survivor_fraction": round(survivor_frac, 6),
        "target_goodput_rps": round(target, 6),
        "mttr_ms": None,
        "recovered": False,
        "goodput_series": [],
    }
    if first_crash is None:
        return out
    series = _goodput_series(
        faulted_records, first_crash, faulted_makespan_s, scenario.window_s
    )
    out["goodput_series"] = [
        {"t_ms": round(t * 1e3, 6), "goodput_rps": round(g, 6)}
        for t, g in series
    ]
    if crashed >= scenario.replicas:
        return out  # nothing left to recover onto
    for k, (_, goodput) in enumerate(series):
        if goodput >= target:
            out["mttr_ms"] = round((k + 1) * scenario.window_s * 1e3, 6)
            out["recovered"] = True
            break
    return out


def _link_windows(
    scenario: ChaosScenario, config: AcceleratorConfig
) -> List[Tuple[float, float, float]]:
    """Link faults → global service-time windows for the serving tier.

    Each replica is a ``chips``-stage pipeline internally; a degraded
    interconnect stretches the pipeline bottleneck.  The stage cuts stay
    *frozen at the healthy partition* — a flap is transient, nobody
    repartitions mid-window — so the multiplier is the healthy cut's
    bottleneck repriced at the degraded link, over the healthy bottleneck
    (computed on the mix's first network, the dominant tenant by
    convention).
    """
    if not scenario.schedule.link_faults:
        return []
    network = parse_mix(scenario.mix)[0].network
    from repro.nn.zoo import build

    net = build(network)
    healthy = plan_pipeline(net, config, scenario.chips, link=scenario.link)
    windows = []
    for fault in scenario.schedule.link_faults:
        degraded_link = scenario.link.degraded(fault.factor)
        bottleneck = max(
            s.compute_s + degraded_link.transfer_seconds(s.send_bytes)
            for s in healthy.stages
        )
        mult = max(1.0, bottleneck / healthy.bottleneck_s)
        windows.append((fault.time_s, fault.end_s, mult))
    return windows


# -- the runner -------------------------------------------------------------


def run_scenario(
    scenario: ChaosScenario,
    config: AcceleratorConfig = CONFIG_16_16,
    coster: Optional[BatchCoster] = None,
) -> Dict[str, object]:
    """Execute one chaos scenario and reduce it to a deterministic rollup.

    The healthy and faulted runs see the *identical* seeded request list,
    so every delta in the rollup is attributable to the fault schedule.
    Raises if any offered request fails to terminate (the zero-silent-drop
    invariant).
    """
    schedule = scenario.schedule
    tenants = parse_mix(scenario.mix, slo_ms=scenario.slo_ms)
    requests = poisson_arrivals(
        scenario.rate_rps, scenario.duration_s, tenants, seed=scenario.seed
    )
    batch_policy = BatchPolicy(max_batch=scenario.max_batch)
    queue_policy = QueuePolicy()

    def make_engine(
        faults, service_windows, engine_coster, sdc=(), verification=None
    ):
        return FailoverEngine(
            config,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            replicas=scenario.replicas,
            routing=scenario.routing,
            faults=faults,
            failover_policy=scenario.failover_policy,
            service_windows=service_windows,
            coster=engine_coster,
            sdc_faults=sdc,
            verification=verification,
        )

    healthy_coster = coster or BatchCoster(config)
    healthy = make_engine((), (), healthy_coster).run(
        requests, scenario.duration_s
    )

    degrade_section = None
    faulted_coster = healthy_coster
    if schedule.pe_mask is not None and not schedule.pe_mask.is_noop:
        from repro.nn.zoo import build

        degrade_section = {}
        for network in sorted({t.network for t in tenants}):
            report = replan_degraded(
                build(network), config, schedule.pe_mask
            )
            degrade_section[network] = report.to_dict()
        # the faulted tier actually *runs* at the degraded geometry
        faulted_coster = BatchCoster(report.degraded_cfg)

    windows = _link_windows(scenario, config)
    faulted = make_engine(
        schedule.replica_faults,
        windows,
        faulted_coster,
        sdc=schedule.sdc_faults,
        verification=scenario.verification,
    ).run(requests, scenario.duration_s)

    accounting_exact = True
    for label, report in (("healthy", healthy), ("faulted", faulted)):
        s = report.summary
        terminated = s["completed"] + s["shed"] + s["failed"]
        if terminated != s["offered"]:
            accounting_exact = False
            if "zero-silent-drops" not in scenario.invariants:
                # not declared: enforce the hard way rather than let a
                # broken engine masquerade as a lossy-but-accounted one
                raise RuntimeError(
                    f"{scenario.name}/{label}: {s['offered']} requests "
                    f"offered but only {terminated} terminated — a request "
                    "was silently dropped"
                )

    repair_section = None
    if scenario.lost_chips:
        from repro.nn.zoo import build

        network = tenants[0].network
        repair_section = repair_pipeline(
            build(network),
            config,
            scenario.chips,
            scenario.lost_chips,
            link=scenario.link,
        ).to_dict()

    h, f = healthy.summary, faulted.summary
    hl, fl = h["latency_ms"], f["latency_ms"]

    def ratio(a: float, b: float) -> float:
        return round(a / b, 6) if b else 1.0

    integrity_section = None
    invariant_results: Dict[str, bool] = {}
    if "zero-silent-drops" in scenario.invariants:
        invariant_results["zero-silent-drops"] = accounting_exact
    if scenario.verification is not None or schedule.sdc_faults:
        integrity = dict(f["integrity"])
        verified_ratio = None
        if scenario.verification is not None and scenario.verification.enabled:
            # the check's cost in isolation: the same healthy workload with
            # only the verification overhead switched on
            vh = make_engine(
                (), (), healthy_coster, verification=scenario.verification
            ).run(requests, scenario.duration_s)
            vhl = vh.summary["latency_ms"]
            verified_ratio = {
                "p50": ratio(vhl["p50"], hl["p50"]),
                "p95": ratio(vhl["p95"], hl["p95"]),
                "p99": ratio(vhl["p99"], hl["p99"]),
            }
        integrity["verified_latency_ratio"] = verified_ratio
        integrity_section = integrity
        targets = sorted({sdc.replica for sdc in schedule.sdc_faults})
        drained = set(integrity["drained_replicas"])
        for inv in scenario.invariants:
            if inv == "zero-escaped":
                invariant_results[inv] = integrity["escaped_batches"] == 0
            elif inv == "sdc-drained":
                invariant_results[inv] = all(r in drained for r in targets)

    rollup: Dict[str, object] = {
        "scenario": scenario.meta(),
        "schedule": schedule.to_dict(),
        "failover_policy": scenario.failover_policy.to_dict(),
        "config": config.name,
        "healthy": _run_digest(h),
        "faulted": _run_digest(f),
        "availability": ratio(f["completed"], f["offered"]),
        "goodput_under_fault": f["goodput_rps"],
        "goodput_ratio": ratio(f["goodput_rps"], h["goodput_rps"]),
        "latency_ratio": {
            "p50": ratio(fl["p50"], hl["p50"]),
            "p95": ratio(fl["p95"], hl["p95"]),
            "p99": ratio(fl["p99"], hl["p99"]),
        },
        "recovery": _recovery(
            scenario, schedule, h, faulted.metrics.completed, f["makespan_s"]
        ),
        "failover": {
            "retries": faulted.summary["failover"]["retries"],
            "hedges": faulted.summary["failover"]["hedges"],
            "hedge_wasted_ms": faulted.summary["failover"]["hedge_wasted_ms"],
            "health_timeline": faulted.summary["failover"]["health_timeline"],
        },
        "degrade": degrade_section,
        "repair": repair_section,
        "integrity": integrity_section,
        "invariants_declared": list(scenario.invariants),
        "invariants": invariant_results,
    }
    return rollup


def rollup_to_json(rollup: Dict[str, object]) -> str:
    """Canonical byte-stable JSON of a scenario rollup."""
    return to_json(rollup)


# -- the named scenario registry -------------------------------------------


def _single_crash(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="single-crash",
        description="one of three replicas fail-stops at steady state",
        schedule=FaultSchedule.seeded(seed, n_replicas=3, duration_s=4.0, crashes=1),
        replicas=3,
        seed=seed,
        invariants=("zero-silent-drops",),
    )


def _fail_slow(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="fail-slow",
        description="gray failure: two slowdown windows, hedging on",
        schedule=FaultSchedule.seeded(
            seed, n_replicas=3, duration_s=4.0, crashes=0, slowdowns=2
        ),
        replicas=3,
        seed=seed,
        failover_policy=FailoverPolicy(hedge=True),
        invariants=("zero-silent-drops",),
    )


def _link_flap(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="link-flap",
        description="flapping inter-chip link under a 2-chip pipeline on a "
        "constrained fabric",
        schedule=FaultSchedule(
            link_faults=flapping_link(
                start_s=0.8, period_s=0.8, down_fraction=0.4, factor=8.0, flaps=3
            ),
            seed=seed,
        ),
        replicas=2,
        chips=2,
        link=LinkSpec(bandwidth_gbs=0.5, latency_s=5e-4),
        seed=seed,
        invariants=("zero-silent-drops",),
    )


def _cascade(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="cascade",
        description="three of four replicas crash in sequence",
        schedule=FaultSchedule.seeded(seed, n_replicas=4, duration_s=4.0, crashes=3),
        replicas=4,
        seed=seed,
        invariants=("zero-silent-drops",),
    )


def _pe_mask(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="pe-mask",
        description="13 PE columns fused off: Algorithm 2 flips conv1 to "
        "inter-kernel, tier serves at the degraded geometry",
        schedule=FaultSchedule(pe_mask=PEMask(masked_cols=13), seed=seed),
        replicas=2,
        seed=seed,
        invariants=("zero-silent-drops",),
    )


def _chip_loss(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="chip-loss",
        description="a 3-chip pipeline loses chip 1; DP rebalance over "
        "survivors plus a replica crash on the serving tier",
        schedule=FaultSchedule.seeded(seed, n_replicas=2, duration_s=4.0, crashes=1),
        replicas=2,
        chips=3,
        lost_chips=(1,),
        seed=seed,
        invariants=("zero-silent-drops",),
    )


def _sdc_storm(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="sdc-storm",
        description="replica 1 silently corrupts every batch for 1.2s; "
        "verified inference detects, recomputes, and drains it",
        schedule=FaultSchedule(
            sdc_faults=(
                SDCFault(
                    replica=1, time_s=0.8, duration_s=1.2, per_batch=1.0, seed=seed
                ),
            ),
            seed=seed,
        ),
        replicas=3,
        seed=seed,
        verification=VerificationPolicy(),
        invariants=("zero-silent-drops", "zero-escaped", "sdc-drained"),
    )


def _sdc_silent(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="sdc-silent",
        description="the same SDC window with verification off: every "
        "corrupted batch escapes to a tenant (the case for the guard)",
        schedule=FaultSchedule(
            sdc_faults=(
                SDCFault(
                    replica=1, time_s=0.8, duration_s=1.2, per_batch=1.0, seed=seed
                ),
            ),
            seed=seed,
        ),
        replicas=3,
        seed=seed,
        verification=VerificationPolicy(enabled=False),
        invariants=("zero-silent-drops",),
    )


_BUILDERS = {
    "single-crash": _single_crash,
    "fail-slow": _fail_slow,
    "link-flap": _link_flap,
    "cascade": _cascade,
    "pe-mask": _pe_mask,
    "chip-loss": _chip_loss,
    "sdc-storm": _sdc_storm,
    "sdc-silent": _sdc_silent,
}

SCENARIO_NAMES = tuple(sorted(_BUILDERS))


def build_scenario(name: str, seed: int = 1) -> ChaosScenario:
    """Instantiate a named scenario at a seed (the CLI's entry point)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}"
        ) from None
    return builder(seed)
