"""Fault models: seeded, deterministic fault schedules.

A :class:`FaultSchedule` bundles everything that can go wrong with a
deployment into one validated, serializable object:

* **replica faults** — :class:`~repro.serve.failover.ReplicaFault`
  fail-stop crashes and fail-slow windows, consumed by the
  :class:`~repro.serve.failover.FailoverEngine`;
* **link faults** — :class:`LinkFault` degradation windows on the
  inter-chip :class:`~repro.cluster.link.LinkSpec` (a *flap* is just a
  periodic train of short windows, see :func:`flapping_link`);
* **PE mask** — :class:`PEMask`, rows/columns of the PE array fused off,
  from which :mod:`repro.resilience.degrade` derives a degraded
  :class:`~repro.arch.config.AcceleratorConfig` and re-runs Algorithm 2;
* **bit flips** — :class:`BitFlipFault`, single-bit silent data corruption
  in the activation buffer, weight buffer, partial-sum accumulator, or the
  stored (post-quantization) output, executed against the functional
  datapath by :class:`repro.integrity.SDCInjector` and guarded by the ABFT
  checksums of :mod:`repro.integrity.abft`;
* **serving-tier SDC windows** — :class:`~repro.serve.verified.SDCFault`,
  a window during which one replica's batches are silently corrupted,
  consumed by the :class:`~repro.serve.failover.FailoverEngine` when a
  :class:`~repro.serve.verified.VerificationPolicy` is in force.

Schedules are either written explicitly or drawn from
:meth:`FaultSchedule.seeded` — a :class:`random.Random` seeded explicitly,
so the same seed always produces the identical schedule and everything
downstream (the chaos runner, the benchmark) is bit-deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.serve.failover import ReplicaFault
from repro.serve.verified import SDCFault

__all__ = [
    "PEMask",
    "LinkFault",
    "MaskFault",
    "BitFlipFault",
    "BITFLIP_SITES",
    "FaultSchedule",
    "flapping_link",
    "seeded_bitflips",
    "ReplicaFault",
    "SDCFault",
]

#: datapath sites a bit flip can land in (see docs/integrity.md)
BITFLIP_SITES = ("activation", "weight", "psum", "output")


@dataclass(frozen=True)
class BitFlipFault:
    """One silent single-bit flip in the functional datapath.

    ``site`` names the storage the flip lands in:

    * ``activation`` — an element of the input tensor in the data buffer;
    * ``weight`` — an element of the weight tensor in the weight buffer;
    * ``psum`` — an element of the partial-sum accumulator, struck after
      accumulation step ``step`` (a sub-kernel piece for the partition
      path, a kernel element for the improved-inter path);
    * ``output`` — an element of the stored output, after the final write.

    ``index`` addresses the element (flat, row-major, reduced modulo the
    target's size at injection time so one fault family works across layer
    geometries); ``bit`` is the bit position flipped within the stored
    word.  Execution is performed by :class:`repro.integrity.SDCInjector`.
    """

    site: str
    index: int
    bit: int
    step: int = 0

    def __post_init__(self) -> None:
        if self.site not in BITFLIP_SITES:
            raise ConfigError(
                f"unknown bit-flip site {self.site!r}; choose from {BITFLIP_SITES}"
            )
        for attr in ("index", "bit", "step"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(f"bit-flip {attr} must be an int, got {value!r}")
            if value < 0:
                raise ConfigError(f"bit-flip {attr} must be >= 0, got {value!r}")
        if self.bit > 63:
            raise ConfigError(f"bit-flip bit must be < 64, got {self.bit!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "index": self.index,
            "bit": self.bit,
            "step": self.step,
        }


def seeded_bitflips(
    seed: int,
    count: int,
    sites: Tuple[str, ...] = BITFLIP_SITES,
    word_bits: int = 16,
    psum_bits: int = 24,
    max_index: int = 1 << 20,
    max_step: int = 16,
) -> Tuple[BitFlipFault, ...]:
    """Draw a deterministic family of single-bit flips from one seed.

    Sites are visited round-robin so every requested site gets even
    coverage; indices/bits/steps come from one :class:`random.Random`
    stream, so the same seed always produces the identical family.
    ``psum`` flips may land anywhere in the wide accumulator's low
    ``psum_bits`` bits; the storage sites stay within ``word_bits``.
    """
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        raise ConfigError(f"bit-flip count must be an int >= 0, got {count!r}")
    if not sites:
        raise ConfigError("seeded_bitflips needs at least one site")
    for site in sites:
        if site not in BITFLIP_SITES:
            raise ConfigError(
                f"unknown bit-flip site {site!r}; choose from {BITFLIP_SITES}"
            )
    rng = random.Random(seed)
    flips = []
    for i in range(count):
        site = sites[i % len(sites)]
        bits = psum_bits if site == "psum" else word_bits
        flips.append(
            BitFlipFault(
                site=site,
                index=rng.randrange(max_index),
                bit=rng.randrange(bits),
                step=rng.randrange(max_step),
            )
        )
    return tuple(flips)


@dataclass(frozen=True)
class PEMask:
    """Rows/columns of the PE array masked off (fused away after a defect).

    The computation engine is a ``Tin x Tout`` multiplier array feeding
    ``Tout`` adder trees: masking a *column* removes one input lane
    (effective ``Tin`` shrinks), masking a *row* removes one adder tree
    (effective ``Tout`` shrinks) — exactly the geometry change a narrow
    conv1 presents, which is why Algorithm 2 re-plans rather than fails.
    """

    masked_cols: int = 0
    masked_rows: int = 0

    def __post_init__(self) -> None:
        for attr in ("masked_cols", "masked_rows"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(f"{attr} must be an int, got {value!r}")
            if value < 0:
                raise ConfigError(f"{attr} must be >= 0, got {value!r}")

    @property
    def is_noop(self) -> bool:
        return self.masked_cols == 0 and self.masked_rows == 0

    def to_dict(self) -> Dict[str, int]:
        return {"masked_cols": self.masked_cols, "masked_rows": self.masked_rows}


@dataclass(frozen=True)
class LinkFault:
    """One inter-chip link degradation window.

    During ``[time_s, time_s + duration_s)`` the link runs at
    ``LinkSpec.degraded(factor)`` — bandwidth divided and hop latency
    multiplied by ``factor``.
    """

    time_s: float
    factor: float
    duration_s: float

    def __post_init__(self) -> None:
        if math.isnan(self.time_s) or self.time_s < 0:
            raise ConfigError(f"link fault time must be >= 0, got {self.time_s!r}")
        if math.isnan(self.factor) or math.isinf(self.factor) or self.factor < 1:
            raise ConfigError(
                f"link degrade factor must be finite and >= 1, got {self.factor!r}"
            )
        if math.isnan(self.duration_s) or self.duration_s <= 0 or math.isinf(self.duration_s):
            raise ConfigError(
                f"link fault duration must be positive and finite, "
                f"got {self.duration_s!r}"
            )

    @property
    def end_s(self) -> float:
        return self.time_s + self.duration_s

    def to_dict(self) -> Dict[str, float]:
        return {
            "time_ms": round(self.time_s * 1e3, 6),
            "factor": round(self.factor, 6),
            "duration_ms": round(self.duration_s * 1e3, 6),
        }


def flapping_link(
    start_s: float,
    period_s: float,
    down_fraction: float,
    factor: float,
    flaps: int,
) -> Tuple[LinkFault, ...]:
    """A flapping link: ``flaps`` periodic degradation windows.

    Each period of ``period_s`` seconds starts with a degraded window
    lasting ``down_fraction`` of the period at ``factor``× worse link
    parameters — the classic symptom of a renegotiating PHY.
    """
    if math.isnan(start_s) or start_s < 0:
        raise ConfigError(f"flap start must be >= 0, got {start_s!r}")
    if not period_s > 0:
        raise ConfigError(f"flap period must be positive, got {period_s!r}")
    if not 0 < down_fraction < 1:
        raise ConfigError(
            f"down_fraction must be in (0, 1), got {down_fraction!r}"
        )
    if isinstance(flaps, bool) or not isinstance(flaps, int) or flaps <= 0:
        raise ConfigError(f"flap count must be a positive int, got {flaps!r}")
    return tuple(
        LinkFault(
            time_s=start_s + k * period_s,
            factor=factor,
            duration_s=down_fraction * period_s,
        )
        for k in range(flaps)
    )


@dataclass(frozen=True)
class MaskFault:
    """A timed partial PE failure landing on one serving replica.

    At ``time_s`` the replica's array loses ``mask``'s rows/columns (the
    hardware self-reports it, like a machine check).  Until the control
    plane replans through Algorithm 2 the replica serves its healthy
    schedule on fewer lanes — the naive proportional slowdown — which is
    exactly the gap :func:`repro.resilience.degrade.replan_degraded`
    closes.  The static :attr:`FaultSchedule.pe_mask` field models a chip
    that *starts* degraded; a ``MaskFault`` models one that degrades
    mid-run under a live controller.
    """

    time_s: float
    replica: int
    mask: PEMask

    def __post_init__(self) -> None:
        if math.isnan(self.time_s) or math.isinf(self.time_s) or self.time_s < 0:
            raise ConfigError(
                f"mask fault time must be finite and >= 0, got {self.time_s!r}"
            )
        if isinstance(self.replica, bool) or not isinstance(self.replica, int):
            raise ConfigError(
                f"mask fault replica must be an int, got {self.replica!r}"
            )
        if self.replica < 0:
            raise ConfigError(
                f"mask fault replica must be >= 0, got {self.replica!r}"
            )
        if not isinstance(self.mask, PEMask):
            raise ConfigError(
                f"mask fault needs a PEMask, got {type(self.mask).__name__}"
            )
        if self.mask.is_noop:
            raise ConfigError("mask fault needs a non-noop PEMask")

    def to_dict(self) -> Dict[str, object]:
        return {
            "time_ms": round(self.time_s * 1e3, 6),
            "replica": self.replica,
            "mask": self.mask.to_dict(),
        }


def _entry_label(fault: object) -> str:
    """Human-readable identity of one schedule entry for error messages."""
    kind = getattr(fault, "kind", type(fault).__name__)
    target = getattr(fault, "replica", None)
    at = getattr(fault, "time_s", None)
    where = f" on replica {target}" if target is not None else ""
    return f"{kind}{where} at t={at!r}s"


def _check_entries(kind: str, faults, key) -> None:
    """Finite, non-negative times and no duplicate (time, target) entries.

    Mirrors the ``trace_arrivals`` style: the error names the offending
    entry (its index in time-sorted order) so a generated schedule can be
    traced straight back to its source.
    """
    seen: Dict[object, int] = {}
    for n, fault in enumerate(faults):
        t = fault.time_s
        if math.isnan(t) or math.isinf(t) or t < 0:
            raise ConfigError(
                f"{kind}: non-finite or negative fault time {t!r} "
                f"({_entry_label(fault)}, entry {n})"
            )
        k = key(fault)
        if k in seen:
            raise ConfigError(
                f"{kind}: duplicate fault {_entry_label(fault)} "
                f"(entries {seen[k]} and {n} share time and target)"
            )
        seen[k] = n


@dataclass(frozen=True)
class FaultSchedule:
    """Everything injected into one chaos run, validated and serializable."""

    replica_faults: Tuple[ReplicaFault, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    pe_mask: Optional[PEMask] = None
    sdc_faults: Tuple[SDCFault, ...] = ()
    seed: Optional[int] = field(default=None)
    #: timed per-replica PE masks (the self-healing control scenarios)
    mask_faults: Tuple[MaskFault, ...] = ()

    def __post_init__(self) -> None:
        # normalize to deterministic order regardless of construction order
        object.__setattr__(
            self,
            "replica_faults",
            tuple(
                sorted(self.replica_faults, key=lambda f: (f.time_s, f.replica))
            ),
        )
        object.__setattr__(
            self,
            "link_faults",
            tuple(sorted(self.link_faults, key=lambda f: f.time_s)),
        )
        object.__setattr__(
            self,
            "sdc_faults",
            tuple(sorted(self.sdc_faults, key=lambda f: (f.time_s, f.replica))),
        )
        object.__setattr__(
            self,
            "mask_faults",
            tuple(sorted(self.mask_faults, key=lambda f: (f.time_s, f.replica))),
        )
        # two crashes of one replica at one instant (or two identical link
        # windows) are always a schedule-generation bug; reject them with
        # the offending entry named rather than silently double-applying
        _check_entries(
            "replica_faults",
            self.replica_faults,
            key=lambda f: (f.time_s, f.replica),
        )
        _check_entries("link_faults", self.link_faults, key=lambda f: f.time_s)
        _check_entries(
            "sdc_faults", self.sdc_faults, key=lambda f: (f.time_s, f.replica)
        )
        _check_entries(
            "mask_faults", self.mask_faults, key=lambda f: (f.time_s, f.replica)
        )

    @property
    def crashes(self) -> Tuple[ReplicaFault, ...]:
        return tuple(f for f in self.replica_faults if f.kind == "crash")

    @property
    def slowdowns(self) -> Tuple[ReplicaFault, ...]:
        return tuple(f for f in self.replica_faults if f.kind == "slow")

    @property
    def is_empty(self) -> bool:
        return (
            not self.replica_faults
            and not self.link_faults
            and not self.sdc_faults
            and not self.mask_faults
            and (self.pe_mask is None or self.pe_mask.is_noop)
        )

    def first_crash_s(self) -> Optional[float]:
        crashes = self.crashes
        return crashes[0].time_s if crashes else None

    def validate_for(self, n_replicas: int) -> None:
        """Reject faults targeting replicas the deployment does not have."""
        for fault in self.replica_faults:
            if fault.replica >= n_replicas:
                raise ConfigError(
                    f"fault targets replica {fault.replica} but the "
                    f"deployment has only {n_replicas} replicas"
                )
        for sdc in self.sdc_faults:
            if sdc.replica >= n_replicas:
                raise ConfigError(
                    f"SDC fault targets replica {sdc.replica} but the "
                    f"deployment has only {n_replicas} replicas"
                )
        for mask in self.mask_faults:
            if mask.replica >= n_replicas:
                raise ConfigError(
                    f"mask fault targets replica {mask.replica} but the "
                    f"deployment has only {n_replicas} replicas"
                )
        if len({f.replica for f in self.crashes}) >= n_replicas:
            # allowed, but the run will end in FAILED_NO_REPLICAS for the
            # tail of the workload — that is a legitimate scenario
            pass

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "replica_faults": [f.to_dict() for f in self.replica_faults],
            "link_faults": [f.to_dict() for f in self.link_faults],
            "sdc_faults": [f.to_dict() for f in self.sdc_faults],
            "pe_mask": self.pe_mask.to_dict() if self.pe_mask else None,
            "mask_faults": [f.to_dict() for f in self.mask_faults],
        }

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_replicas: int,
        duration_s: float,
        crashes: int = 1,
        slowdowns: int = 0,
        slow_factor_range: Tuple[float, float] = (2.0, 8.0),
        slow_duration_s: float = 1.0,
        link_flaps: int = 0,
        link_factor: float = 4.0,
    ) -> "FaultSchedule":
        """Draw a deterministic random schedule from one explicit seed.

        Fault times land in the middle 60% of the run (``[0.2, 0.8) *
        duration``) so the healthy steady state is observable on both
        sides.  Crashes pick distinct replicas; slowdowns pick any replica
        not already crashed before the slowdown starts.
        """
        if crashes + slowdowns > 0 and n_replicas <= 0:
            raise ConfigError("seeded schedule needs at least one replica")
        if crashes > n_replicas:
            raise ConfigError(
                f"cannot crash {crashes} of {n_replicas} replicas"
            )
        if not duration_s > 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        rng = random.Random(seed)

        def mid_time() -> float:
            return (0.2 + 0.6 * rng.random()) * duration_s

        replica_faults: List[ReplicaFault] = []
        crash_rids = rng.sample(range(n_replicas), crashes)
        crash_at: Dict[int, float] = {}
        for rid in crash_rids:
            t = mid_time()
            crash_at[rid] = t
            replica_faults.append(ReplicaFault("crash", rid, t))
        for _ in range(slowdowns):
            rid = rng.randrange(n_replicas)
            t = mid_time()
            if rid in crash_at and crash_at[rid] <= t:
                continue  # already dead; drawing again would bias the rng
            lo, hi = slow_factor_range
            replica_faults.append(
                ReplicaFault(
                    "slow",
                    rid,
                    t,
                    factor=round(lo + (hi - lo) * rng.random(), 3),
                    duration_s=slow_duration_s,
                )
            )
        link_faults: Tuple[LinkFault, ...] = ()
        if link_flaps:
            period = 0.6 * duration_s / link_flaps
            link_faults = flapping_link(
                start_s=0.2 * duration_s,
                period_s=period,
                down_fraction=0.4,
                factor=link_factor,
                flaps=link_flaps,
            )
        return cls(
            replica_faults=tuple(replica_faults),
            link_faults=link_faults,
            seed=seed,
        )
