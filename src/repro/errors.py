"""Exception hierarchy for the C-Brain reproduction library.

Every error raised by this package derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate configuration problems from modelling problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError):
    """A tensor/layer shape is inconsistent or impossible.

    Raised during shape inference (e.g. a kernel larger than its padded
    input) and by tiling transforms that receive incompatible geometry.
    """


class ConfigError(ReproError):
    """An accelerator or model configuration is invalid.

    Examples: non-positive PE width, a buffer of zero bytes, an unknown
    scheme name passed to a factory.
    """


class ScheduleError(ReproError):
    """A parallelization scheme cannot legally schedule the given layer.

    Example: kernel-partitioning requested for a layer whose stride is not
    smaller than its kernel (the transform would be degenerate).
    """


class CapacityError(ReproError):
    """A working set cannot be made to fit on-chip even after tiling."""


class CompileError(ReproError):
    """The macro-instruction compiler received an inconsistent plan."""


class SimulationError(ReproError):
    """The instruction-stream machine encountered an illegal program."""
