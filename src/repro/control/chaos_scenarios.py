"""Chaos under autoscaling: four arms per scenario, invariants enforced.

Where :mod:`repro.resilience.scenarios` measures a *fixed* serving tier
under faults, this module puts the fault schedule under a live control
loop — and puts faults inside the control loop itself.  Every scenario
runs the same seeded requests through four arms:

* ``frozen-healthy`` — the initial fleet, no faults, no controller: the
  ceiling;
* ``frozen-faulted`` — the initial fleet under the data-plane schedule,
  no controller: the survivor-capacity floor self-healing must beat;
* ``nonhealing`` — the PR-7 loop (:class:`HealingPolicy.disabled`) under
  the *same* data-plane and control-plane faults: it scales on load
  signals but trusts tampered telemetry, never repairs, and stays dead
  after a loop crash;
* ``healing`` — the full :class:`~repro.control.healing.SelfHealingControlLoop`.

The rollup carries per-arm digests, the healing loop's decisions log
summary, an MTTR scan (windowed goodput vs a recovery target derived from
the frozen-healthy arm), and a dict of named **invariants** — the CLI
(``repro chaos --control``) exits non-zero when any is false:

==========================  ====================================================
``zero-silent-drops``       every arm satisfies offered == completed+shed+failed
``bounded-mttr``            healing goodput recovers within the deadline
``attainment-floor``        healing attainment >= floor x frozen-faulted
``beats-nonhealing``        healing attainment >= the non-healing loop
``crash-replaced``          every data-plane crash drew a replace action
``replan-applied``          every PE-mask fault drew a replan action
``telemetry-detected``      every exercised telemetry fault was flagged
``actuation-caught``        exercised actuation faults surfaced as failed
                            verifications or retries
``resumed-from-journal``    every loop crash produced a journal restart
``safe-mode-entered``       the control-fault storm tripped safe mode
``safe-mode-floor``         safe-mode healing serves no worse than the
                            frozen fleet (freezing must not shed)
``placement-used``          replacements were placed via place_tenants
==========================  ====================================================

Everything is a deterministic function of (scenario, seed); the rollup
renders byte-stable through :func:`repro.serve.metrics.to_json`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import CONFIG_16_16, AcceleratorConfig
from repro.errors import ConfigError
from repro.resilience.faults import (
    FaultSchedule,
    MaskFault,
    PEMask,
    ReplicaFault,
)
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import AdaptiveServingEngine
from repro.serve.metrics import to_json
from repro.serve.workload import diurnal_arrivals, parse_mix, poisson_arrivals
from repro.control.chaos import (
    ActuationFault,
    ControlFaultSchedule,
    LoopCrash,
    SafeModePolicy,
    TelemetryFault,
    apply_fault_schedule,
)
from repro.control.healing import HealingPolicy, SelfHealingControlLoop
from repro.control.policy import AutoscalePolicy
from repro.control.verifier import VerifierPolicy
from repro.tenancy.fleet import FleetSpec, parse_fleet
from repro.tenancy.placement import demand_from_tenants

__all__ = [
    "ControlChaosScenario",
    "run_control_scenario",
    "build_control_scenario",
    "rollup_to_json",
    "CONTROL_INVARIANT_NAMES",
    "CONTROL_SCENARIO_NAMES",
]

CONTROL_INVARIANT_NAMES = (
    "zero-silent-drops",
    "bounded-mttr",
    "attainment-floor",
    "beats-nonhealing",
    "crash-replaced",
    "replan-applied",
    "telemetry-detected",
    "actuation-caught",
    "resumed-from-journal",
    "safe-mode-entered",
    "safe-mode-floor",
    "placement-used",
)


@dataclass(frozen=True)
class ControlChaosScenario:
    """One named chaos-under-autoscaling experiment, fully pinned."""

    name: str
    description: str
    data_faults: FaultSchedule = field(default_factory=FaultSchedule)
    control_faults: ControlFaultSchedule = field(
        default_factory=ControlFaultSchedule
    )
    mix: str = "alexnet"
    rate_rps: float = 420.0
    duration_s: float = 40.0
    replicas: int = 3
    seed: int = 1
    slo_ms: float = 120.0
    max_batch: int = 8
    autoscale: AutoscalePolicy = field(
        default_factory=lambda: AutoscalePolicy(
            epoch_s=2.0, min_replicas=2, max_replicas=8
        )
    )
    verifier: VerifierPolicy = field(default_factory=VerifierPolicy)
    healing: HealingPolicy = field(default_factory=HealingPolicy)
    safe_mode: SafeModePolicy = field(default_factory=SafeModePolicy)
    #: flash crowd (start_s, duration_s, factor); 1.0 factor = steady
    flash: Optional[Tuple[float, float, float]] = None
    #: fleet context for placed replacements ("" = none)
    fleet_spec: str = ""
    #: goodput-series window for the MTTR scan
    window_s: float = 2.0
    #: recovery target as a fraction of frozen-healthy goodput
    recovery_frac: float = 0.85
    #: deadline for ``bounded-mttr``, seconds after the first data fault
    mttr_deadline_s: float = 10.0
    #: floor for ``attainment-floor`` (x frozen-faulted attainment)
    floor_frac: float = 1.0
    invariants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ConfigError(
                f"replicas must be positive, got {self.replicas!r}"
            )
        if not self.duration_s > 0:
            raise ConfigError(
                f"duration must be positive, got {self.duration_s!r}"
            )
        if not self.window_s > 0:
            raise ConfigError(
                f"window_s must be positive, got {self.window_s!r}"
            )
        if not 0 < self.recovery_frac <= 1:
            raise ConfigError(
                f"recovery_frac must be in (0, 1], got {self.recovery_frac!r}"
            )
        for inv in self.invariants:
            if inv not in CONTROL_INVARIANT_NAMES:
                raise ConfigError(
                    f"unknown invariant {inv!r}; choose from "
                    f"{CONTROL_INVARIANT_NAMES}"
                )
        if self.data_faults.link_faults:
            raise ConfigError(
                "control scenarios have no inter-chip pipeline context; "
                "price link faults via repro.resilience.scenarios instead"
            )
        self.data_faults.validate_for(self.replicas)

    def meta(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "mix": self.mix,
            "rate_rps": round(self.rate_rps, 6),
            "duration_s": round(self.duration_s, 6),
            "replicas": self.replicas,
            "slo_ms": round(self.slo_ms, 6),
            "max_batch": self.max_batch,
            "flash": list(self.flash) if self.flash else None,
            "fleet": self.fleet_spec or None,
            "autoscale": self.autoscale.to_dict(),
            "healing": self.healing.to_dict(),
            "safe_mode": self.safe_mode.to_dict(),
            "data_faults": self.data_faults.to_dict(),
            "control_faults": self.control_faults.to_dict(),
            "invariants": list(self.invariants),
        }


# -- helpers -----------------------------------------------------------------


def _requests(scenario: ControlChaosScenario, tenants) -> List[object]:
    if scenario.flash is None:
        return poisson_arrivals(
            scenario.rate_rps,
            scenario.duration_s,
            tenants,
            seed=scenario.seed,
        )
    return diurnal_arrivals(
        scenario.rate_rps,
        scenario.rate_rps,
        days=1.0,
        tenants=tenants,
        seed=scenario.seed,
        day_s=scenario.duration_s,
        flash_crowds=[scenario.flash],
    )


def _digest(summary: Dict[str, object]) -> Dict[str, object]:
    lat = summary["latency_ms"]
    return {
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed": summary["shed"],
        "failed": summary["failed"],
        "goodput_rps": summary["goodput_rps"],
        "deadline_hit_rate": summary["deadline_hit_rate"],
        "utilization": summary["utilization"],
        "latency_ms": {
            "p50": lat["p50"],
            "p95": lat["p95"],
            "p99": lat["p99"],
        },
        "makespan_s": summary["makespan_s"],
    }


def _check_accounting(arm: str, summary: Dict[str, object]) -> None:
    offered = int(summary["offered"])
    terminated = (
        int(summary["completed"]) + int(summary["shed"]) + int(summary["failed"])
    )
    if offered != terminated:
        raise ConfigError(
            f"arm {arm!r} dropped requests silently: offered {offered} != "
            f"completed+shed+failed {terminated}"
        )


def _first_fault_s(schedule: FaultSchedule) -> Optional[float]:
    times = [f.time_s for f in schedule.replica_faults]
    times.extend(f.time_s for f in schedule.mask_faults)
    times.extend(f.time_s for f in schedule.sdc_faults)
    return min(times) if times else None


def _goodput_series(
    records, start_s: float, end_s: float, window_s: float
) -> List[Tuple[float, float]]:
    if end_s <= start_s:
        return []
    n_windows = int(math.ceil((end_s - start_s) / window_s))
    counts = [0] * n_windows
    for r in records:
        if not r.met_deadline:
            continue
        k = int((r.finish_s - start_s) // window_s)
        if 0 <= k < n_windows:
            counts[k] += 1
    return [
        (start_s + k * window_s, counts[k] / window_s)
        for k in range(n_windows)
    ]


def _recovery_scan(
    scenario: ControlChaosScenario,
    healthy_summary: Dict[str, object],
    healing_records,
    healing_makespan_s: float,
) -> Dict[str, object]:
    """When does the healing arm's windowed goodput clear the target?"""
    first = _first_fault_s(scenario.data_faults)
    target = scenario.recovery_frac * float(healthy_summary["goodput_rps"])
    out: Dict[str, object] = {
        "first_fault_ms": round(first * 1e3, 6) if first is not None else None,
        "target_goodput_rps": round(target, 6),
        "mttr_ms": None,
        "recovered": False,
        "deadline_ms": round(scenario.mttr_deadline_s * 1e3, 6),
    }
    if first is None:
        return out
    series = _goodput_series(
        healing_records, first, healing_makespan_s, scenario.window_s
    )
    for k, (_, goodput) in enumerate(series):
        if goodput >= target:
            out["mttr_ms"] = round((k + 1) * scenario.window_s * 1e3, 6)
            out["recovered"] = True
            break
    return out


# -- invariants --------------------------------------------------------------


def _evaluate_invariants(
    scenario: ControlChaosScenario,
    arms: Dict[str, Dict[str, object]],
    healing_summary: Dict[str, object],
    recovery: Dict[str, object],
) -> Dict[str, bool]:
    healing = arms["healing"]
    frozen = arms["frozen-faulted"]
    nonhealing = arms["nonhealing"]
    detail = healing_summary["healing"]
    control = healing_summary["control"]
    actions = control["actions_by_kind"]
    epochs = control["epochs"]

    def retry_actions() -> int:
        return sum(
            1
            for rec in epochs
            for act in rec.get("actions", ())
            if str(act.get("reason", "")).startswith("retry after failed")
        )

    out: Dict[str, bool] = {}
    for inv in scenario.invariants:
        if inv == "zero-silent-drops":
            # _check_accounting already raised on violation; record it
            ok = all(
                int(arm["offered"])
                == int(arm["completed"]) + int(arm["shed"]) + int(arm["failed"])
                for arm in arms.values()
            )
        elif inv == "bounded-mttr":
            ok = bool(recovery["recovered"]) and (
                float(recovery["mttr_ms"]) <= scenario.mttr_deadline_s * 1e3
            )
        elif inv == "attainment-floor":
            ok = (
                float(healing["deadline_hit_rate"])
                >= scenario.floor_frac * float(frozen["deadline_hit_rate"])
            )
        elif inv == "beats-nonhealing":
            ok = float(healing["deadline_hit_rate"]) >= float(
                nonhealing["deadline_hit_rate"]
            )
        elif inv == "crash-replaced":
            crashes = len(scenario.data_faults.crashes)
            ok = crashes > 0 and actions.get("replace", 0) >= crashes
        elif inv == "replan-applied":
            masks = len(scenario.data_faults.mask_faults)
            ok = masks > 0 and actions.get("replan", 0) >= masks
        elif inv == "telemetry-detected":
            injected = len(detail["telemetry_injected"])
            ok = injected > 0 and int(detail["telemetry_flags"]) >= injected
        elif inv == "actuation-caught":
            exercised = len(detail["actuation_injected"])
            failed = control["verdicts_by_status"].get("failed", 0)
            ok = exercised > 0 and (failed > 0 or retry_actions() > 0)
        elif inv == "resumed-from-journal":
            crashes = len(scenario.control_faults.crashes)
            restarts = detail["restarts"]
            ok = (
                crashes > 0
                and len(restarts) >= crashes
                and all(r["journal_epochs"] > 0 for r in restarts)
            )
        elif inv == "safe-mode-entered":
            ok = len(detail["safe_mode_intervals"]) >= 1
        elif inv == "safe-mode-floor":
            ok = int(healing["completed"]) >= int(frozen["completed"])
        elif inv == "placement-used":
            placements = detail["placements"]
            ok = len(placements) >= 1 and all(
                p.get("chip") for p in placements
            )
        else:  # pragma: no cover - guarded by __post_init__
            raise ConfigError(f"unknown invariant {inv!r}")
        out[inv] = bool(ok)
    return out


# -- the runner --------------------------------------------------------------


def run_control_scenario(
    scenario: ControlChaosScenario,
    config: AcceleratorConfig = CONFIG_16_16,
) -> Dict[str, object]:
    """Run all four arms on the same seeded requests; returns the rollup."""
    tenants = parse_mix(scenario.mix, slo_ms=scenario.slo_ms)
    requests = _requests(scenario, tenants)
    coster = BatchCoster(config)
    batch_policy = BatchPolicy(max_batch=scenario.max_batch)
    fleet: Optional[FleetSpec] = (
        parse_fleet(scenario.fleet_spec) if scenario.fleet_spec else None
    )
    chip_map: Optional[Dict[int, str]] = None
    if fleet is not None:
        slots = fleet.slots()
        if len(slots) < scenario.replicas:
            raise ConfigError(
                f"fleet {scenario.fleet_spec!r} has {len(slots)} slots but "
                f"the scenario starts {scenario.replicas} replicas"
            )
        chip_map = {
            rid: slots[rid].chip_id for rid in range(scenario.replicas)
        }
    demands = (
        demand_from_tenants(tenants, scenario.rate_rps)
        if fleet is not None
        else None
    )

    def frozen_engine(faulted: bool):
        engine = AdaptiveServingEngine(
            config,
            batch_policy=batch_policy,
            replicas=scenario.replicas,
            coster=coster,
            chip_map=chip_map,
        )
        if faulted and not scenario.data_faults.is_empty:
            apply_fault_schedule(engine, scenario.data_faults, config)
        report = engine.run(list(requests), scenario.duration_s)
        return dict(report.summary), report.metrics.completed

    def loop_arm(healing: HealingPolicy, safe: SafeModePolicy):
        loop = SelfHealingControlLoop(
            config,
            tenants,
            autoscale=scenario.autoscale,
            verifier=scenario.verifier,
            healing=healing,
            safe_mode=safe,
            control_faults=scenario.control_faults,
            batch_policy=batch_policy,
            replicas=scenario.replicas,
            coster=coster,
            fleet=fleet,
            demands=demands,
            chip_map=chip_map,
        )
        report = loop.run(
            list(requests),
            scenario.duration_s,
            data_faults=scenario.data_faults
            if not scenario.data_faults.is_empty
            else None,
        )
        return report.summary, report.serving.metrics.completed

    healthy_summary, _ = frozen_engine(faulted=False)
    faulted_summary, _ = frozen_engine(faulted=True)
    nonhealing_summary, _ = loop_arm(
        HealingPolicy.disabled(), SafeModePolicy(enabled=False)
    )
    healing_summary, healing_records = loop_arm(
        scenario.healing, scenario.safe_mode
    )

    arms = {
        "frozen-healthy": _digest(healthy_summary),
        "frozen-faulted": _digest(faulted_summary),
        "nonhealing": _digest(nonhealing_summary),
        "healing": _digest(healing_summary),
    }
    for name, arm in arms.items():
        _check_accounting(name, arm)

    recovery = _recovery_scan(
        scenario,
        healthy_summary,
        healing_records,
        float(healing_summary["makespan_s"]),
    )
    invariants = _evaluate_invariants(
        scenario, arms, healing_summary, recovery
    )

    for loop_name, summary in (
        ("nonhealing", nonhealing_summary),
        ("healing", healing_summary),
    ):
        arms[loop_name]["actions_by_kind"] = summary["control"][
            "actions_by_kind"
        ]
        arms[loop_name]["verdicts_by_status"] = summary["control"][
            "verdicts_by_status"
        ]

    detail = healing_summary["healing"]
    return {
        "scenario": scenario.meta(),
        "seed": scenario.seed,
        "arms": arms,
        "attainment": {
            "healing": arms["healing"]["deadline_hit_rate"],
            "nonhealing": arms["nonhealing"]["deadline_hit_rate"],
            "frozen_faulted": arms["frozen-faulted"]["deadline_hit_rate"],
            "frozen_healthy": arms["frozen-healthy"]["deadline_hit_rate"],
            "delta_vs_frozen": round(
                float(arms["healing"]["deadline_hit_rate"])
                - float(arms["frozen-faulted"]["deadline_hit_rate"]),
                6,
            ),
            "delta_vs_nonhealing": round(
                float(arms["healing"]["deadline_hit_rate"])
                - float(arms["nonhealing"]["deadline_hit_rate"]),
                6,
            ),
        },
        "recovery": recovery,
        "healing_detail": {
            "telemetry_injected": detail["telemetry_injected"],
            "actuation_injected": detail["actuation_injected"],
            "telemetry_flags": detail["telemetry_flags"],
            "crash_events": detail["crash_events"],
            "restarts": detail["restarts"],
            "safe_mode_intervals": detail["safe_mode_intervals"],
            "recovery_tracker": detail["recovery"],
            "placements": detail["placements"],
        },
        "invariants": invariants,
    }


def rollup_to_json(rollup: Dict[str, object]) -> str:
    return to_json(rollup)


# -- the scenario catalogue --------------------------------------------------


def _crash_replace(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="crash-replace",
        description=(
            "one replica fail-stops near capacity; the healing loop "
            "replaces it at the next boundary while the frozen fleet sheds"
        ),
        seed=seed,
        data_faults=FaultSchedule(
            replica_faults=(ReplicaFault("crash", 1, 10.0),)
        ),
        invariants=(
            "zero-silent-drops",
            "crash-replaced",
            "bounded-mttr",
            "attainment-floor",
            "beats-nonhealing",
        ),
    )


def _failslow_drain(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="failslow-drain",
        description=(
            "a gray failure (4x fail-slow window) trips the service-ratio "
            "detector; the loop drains and replaces one-for-one"
        ),
        seed=seed,
        data_faults=FaultSchedule(
            replica_faults=(
                ReplicaFault("slow", 0, 10.0, factor=4.0, duration_s=20.0),
            )
        ),
        invariants=(
            "zero-silent-drops",
            "attainment-floor",
        ),
    )


def _mask_replan(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="mask-replan",
        description=(
            "a PE machine check masks 4 columns mid-run; the healing loop "
            "replans the replica through Algorithm 2 instead of draining "
            "the whole chip"
        ),
        seed=seed,
        data_faults=FaultSchedule(
            mask_faults=(MaskFault(10.0, 0, PEMask(4, 0)),)
        ),
        invariants=(
            "zero-silent-drops",
            "replan-applied",
            "attainment-floor",
            "beats-nonhealing",
        ),
    )


def _chip_spare(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="chip-spare",
        description=(
            "a crash with fleet context: the replacement is placed onto a "
            "surviving chip through place_tenants, not conjured from air"
        ),
        seed=seed,
        fleet_spec="pool:16-16:5",
        data_faults=FaultSchedule(
            replica_faults=(ReplicaFault("crash", 1, 10.0),)
        ),
        invariants=(
            "zero-silent-drops",
            "crash-replaced",
            "placement-used",
            "attainment-floor",
        ),
    )


def _flash_telemetry(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="flash-telemetry",
        description=(
            "stale and lossy telemetry land exactly as a flash crowd "
            "arrives; the guarded loop flags every tampered window, holds "
            "rather than plan on lies, and still answers the flash once "
            "telemetry clears"
        ),
        seed=seed,
        rate_rps=260.0,
        replicas=2,
        flash=(16.0, 14.0, 2.2),
        control_faults=ControlFaultSchedule(
            telemetry=(
                TelemetryFault("stale", 7),
                TelemetryFault("loss", 8, 0.6),
                TelemetryFault("stale", 9),
            )
        ),
        # three flagged windows would trip the default threshold and freeze
        # the fleet mid-flash; holding per-window is the guard under test
        safe_mode=SafeModePolicy(fault_threshold=4, window_epochs=6),
        invariants=(
            "zero-silent-drops",
            "telemetry-detected",
            "attainment-floor",
        ),
    )


def _flaky_actuator(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="flaky-actuator",
        description=(
            "scale-up commands are silently lost during a flash crowd; the "
            "verifier's failed expectations drive re-issue until the fleet "
            "actually reaches its target"
        ),
        seed=seed,
        rate_rps=260.0,
        flash=(16.0, 16.0, 2.2),
        control_faults=ControlFaultSchedule(
            actuation=(
                ActuationFault(14, "fail"),
                ActuationFault(16, "fail"),
            )
        ),
        invariants=(
            "zero-silent-drops",
            "actuation-caught",
            "beats-nonhealing",
        ),
    )


def _loop_restart(seed: int) -> ControlChaosScenario:
    return ControlChaosScenario(
        name="loop-restart",
        description=(
            "the controller crashes just before a flash crowd; the healing "
            "loop restarts from its journal mid-flash and scales, the "
            "non-restarting loop stays dead at the small fleet"
        ),
        seed=seed,
        rate_rps=260.0,
        replicas=2,
        flash=(18.0, 14.0, 2.2),
        control_faults=ControlFaultSchedule(crashes=(LoopCrash(7, 2),)),
        invariants=(
            "zero-silent-drops",
            "resumed-from-journal",
            "beats-nonhealing",
        ),
    )


def _control_storm(seed: int) -> ControlChaosScenario:
    # a fleet with headroom and nothing to scale: the invariant under a
    # control-plane storm is *do no harm* — freeze and keep serving
    return ControlChaosScenario(
        name="control-storm-safe-mode",
        description=(
            "a storm of tampered telemetry with a healthy fleet: safe mode "
            "freezes all actuation and the tier serves exactly like the "
            "frozen baseline — a blind controller must not reshape a "
            "working fleet"
        ),
        seed=seed,
        rate_rps=260.0,
        replicas=3,
        autoscale=AutoscalePolicy(
            epoch_s=2.0,
            min_replicas=3,
            max_replicas=8,
            retune=False,
        ),
        control_faults=ControlFaultSchedule(
            telemetry=(
                TelemetryFault("loss", 3, 0.5),
                TelemetryFault("stale", 4),
                TelemetryFault("duplicate", 5),
                TelemetryFault("loss", 6, 0.5),
                TelemetryFault("stale", 7),
                TelemetryFault("loss", 8, 0.5),
            )
        ),
        safe_mode=SafeModePolicy(
            fault_threshold=3, window_epochs=6, clean_epochs=3
        ),
        invariants=(
            "zero-silent-drops",
            "telemetry-detected",
            "safe-mode-entered",
            "safe-mode-floor",
        ),
    )


def _composite_storm(seed: int) -> ControlChaosScenario:
    # the benchmark scenario: data-plane and control-plane faults layered
    # over a flash crowd, every healing path exercised in one run
    return ControlChaosScenario(
        name="composite-storm",
        description=(
            "fail-stop + PE mask + flash crowd while telemetry is tampered, "
            "a scale-up is lost, and the controller itself crashes and "
            "restarts from its journal"
        ),
        seed=seed,
        rate_rps=300.0,
        duration_s=60.0,
        flash=(36.0, 16.0, 2.0),
        data_faults=FaultSchedule(
            replica_faults=(ReplicaFault("crash", 1, 10.0),),
            mask_faults=(MaskFault(22.0, 0, PEMask(4, 0)),),
        ),
        control_faults=ControlFaultSchedule(
            telemetry=(
                TelemetryFault("stale", 19),
                TelemetryFault("loss", 20, 0.5),
            ),
            actuation=(ActuationFault(18, "fail"),),
            crashes=(LoopCrash(14, 2),),
        ),
        # the storm is dense enough to trip the default safe-mode policy;
        # this scenario measures repair throughput, not do-no-harm, so the
        # threshold sits above the storm (safe mode has its own scenario)
        safe_mode=SafeModePolicy(fault_threshold=5, window_epochs=6),
        mttr_deadline_s=14.0,
        recovery_frac=0.8,
        invariants=(
            "zero-silent-drops",
            "crash-replaced",
            "replan-applied",
            "telemetry-detected",
            "actuation-caught",
            "resumed-from-journal",
            "bounded-mttr",
            "attainment-floor",
            "beats-nonhealing",
        ),
    )


_BUILDERS = {
    "crash-replace": _crash_replace,
    "failslow-drain": _failslow_drain,
    "mask-replan": _mask_replan,
    "chip-spare": _chip_spare,
    "flash-telemetry": _flash_telemetry,
    "flaky-actuator": _flaky_actuator,
    "loop-restart": _loop_restart,
    "control-storm-safe-mode": _control_storm,
    "composite-storm": _composite_storm,
}

CONTROL_SCENARIO_NAMES = tuple(sorted(_BUILDERS))


def build_control_scenario(name: str, seed: int = 1) -> ControlChaosScenario:
    """One catalogue scenario by name (deterministic in ``seed``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown control scenario {name!r}; choose from "
            f"{CONTROL_SCENARIO_NAMES}"
        ) from None
    return builder(seed)
