"""The control loop: detector → planner → actuator → verifier per epoch.

:class:`ControlLoop` owns one :class:`~repro.serve.engine.AdaptiveServingEngine`
and steps it through the workload in fixed control epochs of simulated
time.  At every boundary it (1) lets the verifier resolve last epoch's
expectations and compute feedback (including the oscillation freeze),
(2) asks the detector for the window's telemetry, (3) asks the planner for
actions, (4) applies them through the actuator and registers the new
expectations.  After the last epoch the engine drains and the run reduces
to a :class:`ControlReport` whose ``control`` section is the full decisions
log: one record per epoch with the window stats, the actions taken (with
concrete rids), and the verification verdicts — bit-deterministic given
the workload seed.

:func:`run_static` runs the identical workload on the plain fixed-fleet
:class:`~repro.serve.engine.ServingEngine` — the peak-/mean-provisioned
baselines the autoscaler is judged against in
``benchmarks/bench_control.py``: SLO attainment no worse than the static
mean fleet, chip-seconds below the static peak fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.perf.instrument import phase
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import (
    AdaptiveServingEngine,
    ServingEngine,
    ServingReport,
)
from repro.serve.metrics import to_json
from repro.serve.queue import QueuePolicy
from repro.serve.workload import Request, TenantSpec
from repro.control.actuator import Actuator
from repro.control.policy import Action, AutoscalePolicy, Planner
from repro.control.telemetry import Detector
from repro.control.verifier import Verifier, VerifierPolicy

__all__ = ["ControlLoop", "ControlReport", "run_static", "static_fleet_sizes"]


@dataclass
class ControlReport:
    """A served workload plus the decisions log that shaped it."""

    summary: Dict[str, object]
    serving: ServingReport
    epochs: List[Dict[str, object]] = field(default_factory=list)

    def to_json(self) -> str:
        return to_json(self.summary)

    @property
    def slo_attainment(self) -> float:
        return float(self.summary["deadline_hit_rate"])

    @property
    def chip_seconds(self) -> float:
        return float(self.summary["fleet"]["chip_seconds"])


class ControlLoop:
    """Closed-loop autoscaling over one adaptive serving engine."""

    def __init__(
        self,
        config: AcceleratorConfig,
        tenants: Sequence[TenantSpec],
        autoscale: AutoscalePolicy = AutoscalePolicy(),
        verifier: VerifierPolicy = VerifierPolicy(),
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "least-loaded",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
    ) -> None:
        if not tenants:
            raise ConfigError("control loop needs at least one tenant")
        if not (
            autoscale.min_replicas <= replicas <= autoscale.max_replicas
        ):
            raise ConfigError(
                f"initial replicas {replicas!r} outside the autoscale bounds "
                f"[{autoscale.min_replicas}, {autoscale.max_replicas}]"
            )
        self.config = config
        self.tenants = list(tenants)
        self.autoscale = autoscale
        self.verifier_policy = verifier
        self.engine = AdaptiveServingEngine(
            config,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            replicas=replicas,
            routing=routing,
            plan_policy=plan_policy,
            coster=coster,
        )
        self.detector = Detector(self.engine, self.tenants)
        self.planner = Planner(
            autoscale,
            self.engine.coster,
            {t.name: t.slo_ms for t in self.tenants},
        )
        self.actuator = Actuator(self.engine)
        self.verifier = Verifier(verifier)

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
        slow_injections: Sequence[Tuple[int, float, float, float]] = (),
    ) -> ControlReport:
        """Serve ``requests`` under closed-loop control.

        ``slow_injections`` are ``(rid, factor, from_s, until_s)`` gray
        failures planted on initial replicas, the stimulus for the
        drain/repair path.  The loop runs ``ceil(duration / epoch_s)``
        epochs, then drains.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("control_run"):
            return self._run(requests, duration_s, extra_meta, slow_injections)

    def _run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]],
        slow_injections: Sequence[Tuple[int, float, float, float]],
    ) -> ControlReport:
        engine = self.engine
        policy = self.autoscale
        for rid, factor, from_s, until_s in slow_injections:
            engine.set_slow(rid, factor, from_s, until_s)
        engine.ingest(requests)
        self.planner.notify_batcher(
            engine.batch_policy.max_batch, engine.batch_policy.max_wait_ms
        )

        epochs: List[Dict[str, object]] = []
        n_epochs = int(math.ceil(duration_s / policy.epoch_s - 1e-9))
        for k in range(n_epochs):
            t_end = min((k + 1) * policy.epoch_s, duration_s)
            engine.advance_to(t_end)
            feedback = self.verifier.check(engine, k)
            window = self.detector.observe(t_end)
            actions = self.planner.plan(window, feedback)
            applied = self.actuator.apply(actions)
            self.verifier.register(applied, k)
            for app in applied:
                if app.action.kind == "retune":
                    self.planner.notify_batcher(
                        app.action.max_batch, app.action.max_wait_ms
                    )
            epochs.append(
                {
                    "epoch": k,
                    "window": window.to_dict(),
                    "actions": [app.to_dict() for app in applied],
                    "frozen": k <= feedback.frozen_until_epoch,
                }
            )
        report = engine.finish(duration_s, extra_meta)
        # resolve anything still pending after the drain
        final_feedback = self.verifier.check(engine, n_epochs)
        summary = dict(report.summary)
        action_counts: Dict[str, int] = {}
        for record in epochs:
            for app in record["actions"]:
                action_counts[app["kind"]] = action_counts.get(app["kind"], 0) + 1
        verdict_counts: Dict[str, int] = {}
        for verdict in self.verifier.verdicts:
            verdict_counts[verdict["status"]] = (
                verdict_counts.get(verdict["status"], 0) + 1
            )
        summary["control"] = {
            "policy": policy.to_dict(),
            "verifier": self.verifier_policy.to_dict(),
            "epochs": epochs,
            "n_epochs": n_epochs,
            "actions_by_kind": dict(sorted(action_counts.items())),
            "verdicts": self.verifier.verdicts,
            "verdicts_by_status": dict(sorted(verdict_counts.items())),
            "freezes": self.verifier.freezes,
            "unresolved_expectations": len(final_feedback.failed_kinds),
        }
        return ControlReport(summary=summary, serving=report, epochs=epochs)


def static_fleet_sizes(
    coster: BatchCoster,
    tenants: Sequence[TenantSpec],
    mean_rate_rps: float,
    peak_rate_rps: float,
    max_batch: int,
    headroom: float = 0.25,
) -> Tuple[int, int]:
    """(mean-provisioned, peak-provisioned) static fleet sizes.

    Uses the same blended capacity model as the planner — seconds per
    request averaged over the tenants' weight shares — so the baselines
    are sized by the identical arithmetic the autoscaler uses, not a
    hand-picked number.
    """
    if peak_rate_rps < mean_rate_rps:
        raise ConfigError(
            f"peak rate {peak_rate_rps!r} below mean rate {mean_rate_rps!r}"
        )
    total_weight = sum(t.weight for t in tenants)
    sec_per_req = sum(
        (t.weight / total_weight) * coster.image_seconds(t.network, max_batch)
        for t in tenants
    )
    capacity = 1.0 / sec_per_req
    mean_n = max(1, math.ceil(mean_rate_rps * (1 + headroom) / capacity - 1e-9))
    peak_n = max(1, math.ceil(peak_rate_rps * (1 + headroom) / capacity - 1e-9))
    return mean_n, peak_n


def run_static(
    config: AcceleratorConfig,
    requests: Sequence[Request],
    duration_s: float,
    replicas: int,
    batch_policy: BatchPolicy = BatchPolicy(),
    queue_policy: QueuePolicy = QueuePolicy(),
    routing: str = "least-loaded",
    plan_policy: str = "adaptive-2",
    coster: Optional[BatchCoster] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> Tuple[ServingReport, float]:
    """Serve the workload on a fixed fleet; returns (report, chip-seconds).

    Chip-seconds for a static fleet are ``replicas * makespan`` — the
    provisioned chips are held for the entire run, which is exactly the
    cost the autoscaler exists to avoid.
    """
    engine = ServingEngine(
        config,
        batch_policy=batch_policy,
        queue_policy=queue_policy,
        replicas=replicas,
        routing=routing,
        plan_policy=plan_policy,
        coster=coster,
    )
    report = engine.run(requests, duration_s, extra_meta=extra_meta)
    chip_seconds = replicas * float(report.summary["makespan_s"])
    return report, chip_seconds
