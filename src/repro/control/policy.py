"""The planner: a deterministic autoscaling policy with hysteresis.

Given one :class:`~repro.control.telemetry.WindowStats` per epoch, the
:class:`Planner` decides at most a handful of :class:`Action` records —
scale the fleet, retune the batcher, or drain-and-replace an unhealthy
replica.  The same adaptive insight as the paper's Algorithm 2, one level
up: instead of freezing one fleet configuration for the whole run, pick
the configuration that fits the *current* traffic window.

Design rules that keep the loop stable and bit-deterministic:

* **hysteresis bands** — scale up when the worst tenant's windowed p95
  exceeds ``high_band`` of its SLO (or anything is shed, or the queue
  backs up); scale down only when p95 is below ``low_band`` *and* fleet
  utilization is below ``low_util``.  The gap between the bands is the
  dead zone where the planner does nothing;
* **demand sizing** — a breach does not creep up one replica per epoch:
  the planner jumps straight to ``ceil(arrival_rate / per-replica
  capacity * (1 + headroom))``, with per-replica capacity costed via
  :func:`repro.adaptive.batch.plan_batch` through the schedule cache
  (the :class:`~repro.serve.batcher.BatchCoster` memo), so a flash crowd
  is answered in one decision;
* **cooldowns** — after a scale action the planner holds for
  ``cooldown_epochs`` (scale-ups may still *raise* the target during
  cooldown; shrinking waits), and the verifier can freeze scaling
  entirely when it sees oscillation;
* **drain/repair** — a replica whose observed/expected service ratio has
  been at or above ``slow_ratio`` for ``slow_epochs`` consecutive windows
  (with at least ``min_health_batches`` batches observed) is drained and
  replaced one-for-one, reusing the fail-slow health-signal semantics of
  :class:`repro.serve.failover.HealthChecker`;
* **batch retune** — the planner picks the largest candidate batch whose
  costed service time plus expected fill time fits inside
  ``batch_slo_frac`` of the tightest SLO at the current per-replica
  arrival rate, so the batcher tracks the traffic level instead of being
  frozen at construction.

Every decision depends only on (policy, windows, fleet state), so the
decisions log is a pure function of the workload seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster
from repro.control.telemetry import WindowStats

__all__ = [
    "Action",
    "AutoscalePolicy",
    "Planner",
    "PlannerFeedback",
    "ACTION_KINDS",
    "BATCH_CANDIDATES",
]

ACTION_KINDS = (
    "scale-up",
    "scale-down",
    "retune",
    "drain",
    # healing actions (repro.control.healing): replace a crashed replica,
    # replan a PE-degraded one through Algorithm 2, roll the fleet back to
    # its last-known-good shape after a missed recovery deadline
    "replace",
    "replan",
    "rollback",
)

#: batch sizes the retune rule may pick from
BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Action:
    """One planner decision, applied by the actuator at an epoch boundary."""

    kind: str
    epoch: int
    time_s: float
    reason: str
    #: fleet size target for scale actions
    target: Optional[int] = None
    #: replica to retire for drain actions
    replica: Optional[int] = None
    #: new batching knobs for retune actions
    max_batch: Optional[int] = None
    max_wait_ms: Optional[float] = None
    #: chip the replacement replica should land on (replace actions placed
    #: through :func:`repro.tenancy.place_tenants`)
    chip: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ConfigError(
                f"unknown action kind {self.kind!r}; choose from {ACTION_KINDS}"
            )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "epoch": self.epoch,
            "time_ms": round(self.time_s * 1e3, 6),
            "reason": self.reason,
        }
        if self.target is not None:
            out["target"] = self.target
        if self.replica is not None:
            out["replica"] = self.replica
        if self.max_batch is not None:
            out["max_batch"] = self.max_batch
        if self.max_wait_ms is not None:
            out["max_wait_ms"] = round(self.max_wait_ms, 6)
        if self.chip is not None:
            out["chip"] = self.chip
        return out


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs of the control loop (see ``docs/autoscaling.md``)."""

    #: control interval in simulated seconds
    epoch_s: float = 2.0
    min_replicas: int = 1
    max_replicas: int = 8
    #: scale-up band: worst tenant windowed p95 over its SLO
    high_band: float = 0.8
    #: scale-down band: only shrink when p95/SLO is below this...
    low_band: float = 0.35
    #: ...and fleet utilization is below this
    low_util: float = 0.5
    #: any windowed shed rate above this is an immediate breach
    shed_hi: float = 0.0
    #: queued requests per active replica that count as a backlog breach
    queue_hi: int = 32
    #: capacity headroom when demand-sizing the fleet (0.25 = +25%)
    headroom: float = 0.25
    #: epochs to hold after a scale action before acting again
    cooldown_epochs: int = 2
    #: observed/expected service ratio that marks a replica unhealthy
    slow_ratio: float = 1.5
    #: consecutive unhealthy windows before drain/repair triggers
    slow_epochs: int = 2
    #: minimum observed batches per window for a health verdict
    min_health_batches: int = 1
    #: retune the batcher (False freezes max-batch/max-wait at construction)
    retune: bool = True
    #: budget for batch service + fill as a fraction of the tightest SLO
    batch_slo_frac: float = 0.5
    #: epochs between batch retunes
    retune_cooldown_epochs: int = 4

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ConfigError(f"epoch_s must be positive, got {self.epoch_s!r}")
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1, got {self.min_replicas!r}"
            )
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas must be >= min_replicas, got "
                f"{self.max_replicas!r} < {self.min_replicas!r}"
            )
        if not 0 < self.low_band < self.high_band:
            raise ConfigError(
                f"bands must satisfy 0 < low_band < high_band, got "
                f"{self.low_band!r} vs {self.high_band!r}"
            )
        if not 0 < self.low_util <= 1:
            raise ConfigError(f"low_util must be in (0, 1], got {self.low_util!r}")
        if self.shed_hi < 0:
            raise ConfigError(f"shed_hi must be >= 0, got {self.shed_hi!r}")
        if self.queue_hi < 1:
            raise ConfigError(f"queue_hi must be >= 1, got {self.queue_hi!r}")
        if self.headroom < 0:
            raise ConfigError(f"headroom must be >= 0, got {self.headroom!r}")
        if self.cooldown_epochs < 0:
            raise ConfigError(
                f"cooldown_epochs must be >= 0, got {self.cooldown_epochs!r}"
            )
        if self.slow_ratio <= 1:
            raise ConfigError(f"slow_ratio must be > 1, got {self.slow_ratio!r}")
        if self.slow_epochs < 1:
            raise ConfigError(f"slow_epochs must be >= 1, got {self.slow_epochs!r}")
        if self.min_health_batches < 1:
            raise ConfigError(
                f"min_health_batches must be >= 1, got {self.min_health_batches!r}"
            )
        if not 0 < self.batch_slo_frac <= 1:
            raise ConfigError(
                f"batch_slo_frac must be in (0, 1], got {self.batch_slo_frac!r}"
            )
        if self.retune_cooldown_epochs < 0:
            raise ConfigError(
                f"retune_cooldown_epochs must be >= 0, "
                f"got {self.retune_cooldown_epochs!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch_s": round(self.epoch_s, 6),
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "high_band": round(self.high_band, 6),
            "low_band": round(self.low_band, 6),
            "low_util": round(self.low_util, 6),
            "shed_hi": round(self.shed_hi, 6),
            "queue_hi": self.queue_hi,
            "headroom": round(self.headroom, 6),
            "cooldown_epochs": self.cooldown_epochs,
            "slow_ratio": round(self.slow_ratio, 6),
            "slow_epochs": self.slow_epochs,
            "retune": self.retune,
            "batch_slo_frac": round(self.batch_slo_frac, 6),
            "retune_cooldown_epochs": self.retune_cooldown_epochs,
        }


@dataclass
class PlannerFeedback:
    """What the verifier tells the planner before the next decision."""

    #: scaling is frozen through this epoch (oscillation guard)
    frozen_until_epoch: int = -1
    #: kinds of the actions that missed their verification deadline
    failed_kinds: List[str] = field(default_factory=list)


class Planner:
    """Turns windowed telemetry into actions under one policy."""

    def __init__(
        self,
        policy: AutoscalePolicy,
        coster: BatchCoster,
        slo_ms: Dict[str, float],
    ) -> None:
        if not slo_ms:
            raise ConfigError("planner needs at least one tenant SLO")
        self.policy = policy
        self.coster = coster
        self.slo_ms = dict(slo_ms)
        self._last_scale_epoch = -(10**9)
        self._last_retune_epoch = -(10**9)
        self._last_target = 0
        # the loop keeps the planner told about the live batcher config
        self._current_max_batch = 16
        self._current_max_wait_ms = 10.0
        #: rid -> consecutive unhealthy windows
        self._unhealthy_streak: Dict[int, int] = {}
        #: rids already drained (never re-drain)
        self._drained: set = set()

    # -- capacity model ----------------------------------------------------

    def _dominant_network(self, window: WindowStats) -> Optional[str]:
        if not window.network_mix:
            return None
        # highest share wins; name order breaks ties deterministically
        return min(window.network_mix, key=lambda n: (-window.network_mix[n], n))

    def _capacity_rps(self, window: WindowStats, max_batch: int) -> float:
        """Blended per-replica capacity at the window's network mix."""
        if not window.network_mix:
            return 0.0
        # harmonic blend: seconds per request averaged over the mix
        sec_per_req = sum(
            share * self.coster.image_seconds(net, max_batch)
            for net, share in sorted(window.network_mix.items())
        )
        return 1.0 / sec_per_req if sec_per_req > 0 else 0.0

    def demand_target(self, window: WindowStats, max_batch: int) -> int:
        """Fleet size that serves the window's arrival rate with headroom."""
        capacity = self._capacity_rps(window, max_batch)
        if capacity <= 0:
            return self.policy.min_replicas
        need = window.arrival_rate_rps * (1.0 + self.policy.headroom) / capacity
        return max(self.policy.min_replicas, math.ceil(need - 1e-9))

    # -- the decision ------------------------------------------------------

    def plan(
        self,
        window: WindowStats,
        feedback: Optional[PlannerFeedback] = None,
    ) -> List[Action]:
        feedback = feedback or PlannerFeedback()
        policy = self.policy
        actions: List[Action] = []
        active = window.active_replicas
        max_batch = self._current_max_batch
        epoch = window.epoch
        t = window.end_s

        # -- drain/repair: unhealthy replicas first ---------------------
        for rid, ratio in sorted(window.replica_service_ratio.items()):
            enough = window.replica_batches.get(rid, 0) >= policy.min_health_batches
            if ratio >= policy.slow_ratio and enough:
                self._unhealthy_streak[rid] = self._unhealthy_streak.get(rid, 0) + 1
            else:
                self._unhealthy_streak[rid] = 0
        for rid in sorted(self._unhealthy_streak):
            if rid in self._drained:
                continue
            if self._unhealthy_streak[rid] >= policy.slow_epochs:
                self._drained.add(rid)
                actions.append(
                    Action(
                        kind="drain",
                        epoch=epoch,
                        time_s=t,
                        replica=rid,
                        reason=(
                            f"service ratio "
                            f"{window.replica_service_ratio.get(rid, 0.0):.2f} "
                            f">= {policy.slow_ratio:g} for "
                            f"{policy.slow_epochs} epochs"
                        ),
                    )
                )
                break  # at most one drain per epoch

        # -- scaling -----------------------------------------------------
        frozen = epoch <= feedback.frozen_until_epoch
        cooling = epoch - self._last_scale_epoch <= policy.cooldown_epochs
        backlog = window.queue_depth > policy.queue_hi * max(1, active)
        breach = (
            window.slo_p95_frac > policy.high_band
            or window.shed_rate > policy.shed_hi
            or backlog
        )
        calm = (
            window.slo_p95_frac < policy.low_band
            and window.shed_rate == 0.0
            and window.utilization < policy.low_util
            and window.queue_depth <= max(1, active)
        )
        if not frozen and breach:
            demand = self.demand_target(window, max_batch)
            target = min(policy.max_replicas, max(active + 1, demand))
            # during cooldown only an *increase* of pressure may act
            if target > active and not (cooling and target <= self._last_target):
                why = []
                if window.slo_p95_frac > policy.high_band:
                    why.append(
                        f"p95 at {window.slo_p95_frac:.2f} of SLO "
                        f"> {policy.high_band:g}"
                    )
                if window.shed_rate > policy.shed_hi:
                    why.append(f"shed rate {window.shed_rate:.3f}")
                if backlog:
                    why.append(f"queue depth {window.queue_depth}")
                actions.append(
                    Action(
                        kind="scale-up",
                        epoch=epoch,
                        time_s=t,
                        target=target,
                        reason="; ".join(why),
                    )
                )
                self._last_scale_epoch = epoch
                self._last_target = target
        elif not frozen and calm and not cooling and active > policy.min_replicas:
            demand = self.demand_target(window, max_batch)
            target = max(policy.min_replicas, min(active - 1, max(demand, 1)))
            if target < active:
                actions.append(
                    Action(
                        kind="scale-down",
                        epoch=epoch,
                        time_s=t,
                        target=target,
                        reason=(
                            f"p95 at {window.slo_p95_frac:.2f} of SLO "
                            f"< {policy.low_band:g}, utilization "
                            f"{window.utilization:.2f} < {policy.low_util:g}"
                        ),
                    )
                )
                self._last_scale_epoch = epoch
                self._last_target = target

        # -- batch retune ------------------------------------------------
        if (
            policy.retune
            and window.completed
            and epoch - self._last_retune_epoch > policy.retune_cooldown_epochs
        ):
            choice = self.retune_batch(window)
            if choice is not None and choice[0] != max_batch:
                new_batch, new_wait = choice
                actions.append(
                    Action(
                        kind="retune",
                        epoch=epoch,
                        time_s=t,
                        max_batch=new_batch,
                        max_wait_ms=new_wait,
                        reason=(
                            f"largest batch fitting "
                            f"{policy.batch_slo_frac:g} of the tightest SLO "
                            f"at {window.arrival_rate_rps:.1f} req/s"
                        ),
                    )
                )
                self._last_retune_epoch = epoch
        return actions

    def notify_batcher(self, max_batch: int, max_wait_ms: float) -> None:
        self._current_max_batch = max_batch
        self._current_max_wait_ms = max_wait_ms

    def retune_batch(self, window: WindowStats) -> Optional[tuple]:
        """(max_batch, max_wait_ms) best fitting the window, or ``None``.

        Picks the largest candidate whose costed service time plus expected
        fill time — ``(B-1)`` further arrivals at this replica's share of
        the window rate — stays inside ``batch_slo_frac`` of the tightest
        SLO.  Larger batches amortize the FC weight streams (the serving
        win measured in ``BENCH_serving.json``), so "largest that fits" is
        "cheapest that is safe".
        """
        net = self._dominant_network(window)
        if net is None:
            return None
        slo_s = min(self.slo_ms.values()) / 1e3
        budget = self.policy.batch_slo_frac * slo_s
        per_replica_rate = window.arrival_rate_rps / max(1, window.active_replicas)
        best = None
        for candidate in BATCH_CANDIDATES:
            service = self.coster.batch_seconds(net, candidate)
            fill = (candidate - 1) / per_replica_rate if per_replica_rate > 0 else 0.0
            if service + min(fill, self._current_max_wait_ms / 1e3) <= budget:
                best = candidate
        if best is None:
            best = 1
        wait = min(self._current_max_wait_ms, 0.25 * slo_s * 1e3)
        return best, wait
