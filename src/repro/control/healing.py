"""Self-healing control: repair actions, journaled restart, safe mode.

:class:`SelfHealingControlLoop` is the PR-7 closed loop
(:class:`~repro.control.loop.ControlLoop`) with three additions, each
gated by :class:`HealingPolicy` so the un-healed loop remains available
as a baseline arm:

* **repair planning** — every epoch the loop *probes* the fleet
  (:func:`probe_fleet`: ground-truth machine-check state, the analogue of
  a node-agent heartbeat) and the :class:`HealingPlanner` emits repair
  actions ahead of load-driven scaling: ``replace`` a crashed replica
  (placed onto a surviving chip through
  :func:`repro.tenancy.place_tenants` when fleet context is given),
  ``replan`` a PE-degraded replica through Algorithm 2
  (:func:`repro.resilience.degrade.degraded_config`), and ``rollback`` to
  the last-known-good fleet shape when an incident misses its recovery
  deadline.  Fault repair is separated from load response by the
  detector's per-replica observed/expected ratios: a replanned replica is
  costed by its *own* degraded-geometry coster, so it reads healthy again
  and load signals stay trustworthy;
* **control-plane fault tolerance** — telemetry arrives through a
  :class:`~repro.control.chaos.TelemetryChannel` and is *validated*
  (epoch/boundary identity, arrivals cross-checked against the ingress
  counter) before the planner may act on it; actions are verified against
  engine state and re-issued when actuation silently failed; a loop crash
  loses all in-memory control state and the restart rebuilds it from the
  decisions journal plus engine ground truth
  (:meth:`~repro.control.telemetry.Detector.resume` is exact, so the
  resumed loop's future windows are bit-identical);
* **safe mode** — a sliding-window count of *detected* control-plane
  faults (tampered telemetry, failed verifications, loop crashes); past
  :class:`~repro.control.chaos.SafeModePolicy.fault_threshold` the loop
  freezes every actuation — scaling, retune, and repairs alike — and just
  keeps serving, because a controller that cannot trust its own senses
  must not be allowed to reshape a working fleet.  ``clean_epochs``
  consecutive quiet epochs release it.

Everything is journaled per epoch (window, delivered telemetry, probe,
actions, verdicts, safe-mode state, last-known-good) and the journal is
both the crash-restart source and the decisions log in the report —
bit-deterministic given the workload seed and the fault schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.perf.instrument import phase
from repro.resilience.degrade import degraded_config
from repro.resilience.faults import FaultSchedule, PEMask
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import AdaptiveServingEngine
from repro.serve.queue import QueuePolicy
from repro.serve.workload import Request, TenantSpec
from repro.tenancy.fleet import ChipSpec, FleetSpec
from repro.tenancy.placement import TenantDemand, place_tenants
from repro.control.actuator import Actuator, AppliedAction
from repro.control.chaos import (
    ControlFaultSchedule,
    FlakyActuator,
    SafeModeController,
    SafeModePolicy,
    TelemetryChannel,
    apply_fault_schedule,
    naive_mask_factor,
)
from repro.control.loop import ControlReport
from repro.control.policy import (
    Action,
    AutoscalePolicy,
    Planner,
    PlannerFeedback,
)
from repro.control.telemetry import Detector, WindowStats
from repro.control.verifier import Verifier, VerifierPolicy

__all__ = [
    "HealingPolicy",
    "ProbeReport",
    "probe_fleet",
    "HealingPlanner",
    "HealingActuator",
    "RecoveryTracker",
    "SelfHealingControlLoop",
]


@dataclass(frozen=True)
class HealingPolicy:
    """Which self-healing behaviors are armed (all off = the PR-7 loop)."""

    #: provision a replacement for a crashed replica at the next boundary
    replace_crashed: bool = True
    #: swap a PE-degraded replica's naive slowdown for Algorithm 2's replan
    replan_degraded: bool = True
    #: restore the last-known-good fleet when a recovery deadline is missed
    rollback: bool = True
    #: validate telemetry before planning on it (hold scaling when invalid)
    telemetry_guard: bool = True
    #: re-issue scale/replace actions whose verification failed
    retry_failed_actions: bool = True
    #: restart from the journal after a loop crash (else stay dead)
    restart_on_crash: bool = True
    #: epochs an incident may stay open before rollback triggers
    recovery_deadline_epochs: int = 4

    def __post_init__(self) -> None:
        if self.recovery_deadline_epochs < 1:
            raise ConfigError(
                f"recovery_deadline_epochs must be >= 1, "
                f"got {self.recovery_deadline_epochs!r}"
            )

    @classmethod
    def disabled(cls) -> "HealingPolicy":
        """The non-healing baseline: the PR-7 loop under the same faults."""
        return cls(
            replace_crashed=False,
            replan_degraded=False,
            rollback=False,
            telemetry_guard=False,
            retry_failed_actions=False,
            restart_on_crash=False,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "replace_crashed": self.replace_crashed,
            "replan_degraded": self.replan_degraded,
            "rollback": self.rollback,
            "telemetry_guard": self.telemetry_guard,
            "retry_failed_actions": self.retry_failed_actions,
            "restart_on_crash": self.restart_on_crash,
            "recovery_deadline_epochs": self.recovery_deadline_epochs,
        }


# -- the probe ---------------------------------------------------------------


@dataclass(frozen=True)
class ProbeReport:
    """Ground-truth fleet health at one epoch boundary.

    This is the node-agent side channel: crashes and PE machine checks are
    self-reported by the hardware, so the probe works even when windowed
    telemetry is being tampered with — which is exactly why repairs keep
    flowing through telemetry faults.
    """

    n_active: int
    #: crashed rids no replace action has covered yet
    crashed_unreplaced: Tuple[int, ...]
    #: (rid, masked_cols, masked_rows) degraded but not yet replanned
    degraded_pending: Tuple[Tuple[int, int, int], ...]
    #: chips hosting at least one crashed replica and no live one
    failed_chips: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_active": self.n_active,
            "crashed_unreplaced": list(self.crashed_unreplaced),
            "degraded_pending": [
                {"replica": rid, "masked_cols": c, "masked_rows": r}
                for rid, c, r in self.degraded_pending
            ],
            "failed_chips": list(self.failed_chips),
        }


def probe_fleet(
    engine: AdaptiveServingEngine,
    replaced: Sequence[int],
    now: float,
) -> ProbeReport:
    """Read crash/degrade state straight off the engine's replicas."""
    covered = set(replaced)
    crashed = tuple(
        sorted(
            r.rid
            for r in engine.replicas
            if r.crashed and r.rid not in covered
        )
    )
    degraded = tuple(
        sorted(
            (
                r.rid,
                int(r.degraded["masked_cols"]),
                int(r.degraded["masked_rows"]),
            )
            for r in engine.replicas
            if r.active
            and r.degraded is not None
            and not r.degraded.get("replanned")
            and float(r.degraded["from_s"]) <= now
        )
    )
    live_chips = {
        r.chip for r in engine.replicas if r.active and r.chip is not None
    }
    failed_chips = tuple(
        sorted(
            {
                r.chip
                for r in engine.replicas
                if r.crashed and r.chip is not None and r.chip not in live_chips
            }
        )
    )
    return ProbeReport(
        n_active=engine.n_active(),
        crashed_unreplaced=crashed,
        degraded_pending=degraded,
        failed_chips=failed_chips,
    )


# -- planner -----------------------------------------------------------------


class HealingPlanner(Planner):
    """The PR-7 planner plus repair planning ahead of load response."""

    def __init__(
        self,
        policy: AutoscalePolicy,
        coster: BatchCoster,
        slo_ms: Dict[str, float],
        healing: HealingPolicy = HealingPolicy(),
        fleet: Optional[FleetSpec] = None,
        demands: Optional[Sequence[TenantDemand]] = None,
        plan_policy: str = "adaptive-2",
    ) -> None:
        super().__init__(policy, coster, slo_ms)
        self.healing = healing
        self.fleet = fleet
        self.demands = list(demands) if demands else None
        self.plan_policy = plan_policy
        #: crashed rids a replace action already covers
        self._replaced: set = set()
        #: degraded rids a replan action already covers
        self._replanned: set = set()
        #: surviving-fleet placements computed for replacements (report)
        self.placements: List[Dict[str, object]] = []

    @property
    def replaced(self) -> Sequence[int]:
        return sorted(self._replaced)

    # -- repair planning ---------------------------------------------------

    def _surviving_fleet(self, failed_chips: Sequence[str]) -> Optional[FleetSpec]:
        """The declared fleet minus the chips the probe marked failed."""
        if self.fleet is None:
            return None
        failed = list(failed_chips)
        chips: List[ChipSpec] = []
        for chip in self.fleet.chips:
            # chip ids are f"{class}{index}"; count this class's casualties
            down = sum(
                1
                for cid in failed
                if cid.startswith(chip.name) and cid[len(chip.name):].isdigit()
            )
            if chip.count - down > 0:
                chips.append(
                    ChipSpec(
                        name=chip.name,
                        config=chip.config,
                        count=chip.count - down,
                        cost_weight=chip.cost_weight,
                        partitions=chip.partitions,
                    )
                )
        if not chips:
            return None
        return FleetSpec(f"{self.fleet.name}-survivors", tuple(chips))

    def _place_replacement(
        self, rid: int, probe: ProbeReport, epoch: int
    ) -> Optional[str]:
        """Re-place the tenants over the survivors; returns the chip the
        placer wants the replacement on (``None`` without fleet context)."""
        surviving = self._surviving_fleet(probe.failed_chips)
        if surviving is None or not self.demands:
            return None
        placement = place_tenants(
            surviving, self.demands, plan_policy=self.plan_policy
        )
        slots = {s.slot_id: s for s in surviving.slots()}
        heaviest = max(self.demands, key=lambda d: (d.rate_rps, d.name))
        chip = slots[placement.slot_of[heaviest.name]].chip_id
        self.placements.append(
            {
                "epoch": epoch,
                "replica": rid,
                "fleet": surviving.name,
                "chip": chip,
                "passes": placement.passes,
                "assignments": {
                    name: slots[slot_id].chip_id
                    for name, slot_id in sorted(placement.slot_of.items())
                },
            }
        )
        return chip

    def plan_repairs(
        self,
        probe: ProbeReport,
        feedback: PlannerFeedback,
        epoch: int,
        t: float,
    ) -> List[Action]:
        healing = self.healing
        actions: List[Action] = []
        if healing.replace_crashed and probe.crashed_unreplaced:
            intended = min(
                self.policy.max_replicas,
                probe.n_active + len(probe.crashed_unreplaced),
            )
            budget = intended - probe.n_active
            for rid in probe.crashed_unreplaced[:budget]:
                chip = self._place_replacement(rid, probe, epoch)
                self._replaced.add(rid)
                actions.append(
                    Action(
                        kind="replace",
                        epoch=epoch,
                        time_s=t,
                        target=intended,
                        replica=rid,
                        chip=chip,
                        reason=(
                            f"replica {rid} fail-stop; "
                            f"restoring fleet to {intended}"
                        ),
                    )
                )
            if actions:
                self._last_scale_epoch = epoch
                self._last_target = intended
        if healing.replan_degraded:
            for rid, cols, rows in probe.degraded_pending:
                if rid in self._replanned:
                    continue
                self._replanned.add(rid)
                actions.append(
                    Action(
                        kind="replan",
                        epoch=epoch,
                        time_s=t,
                        replica=rid,
                        reason=(
                            f"PE mask cols={cols} rows={rows} on replica "
                            f"{rid}; replanning through Algorithm 2"
                        ),
                    )
                )
        if healing.retry_failed_actions:
            retryable = sorted(
                set(feedback.failed_kinds)
                & {"scale-up", "replace", "rollback"}
            )
            target = self._last_target
            if retryable and target > probe.n_active:
                actions.append(
                    Action(
                        kind="scale-up",
                        epoch=epoch,
                        time_s=t,
                        target=min(self.policy.max_replicas, target),
                        reason=(
                            "retry after failed verification of "
                            + "+".join(retryable)
                        ),
                    )
                )
                self._last_scale_epoch = epoch
        return actions

    def plan_epoch(
        self,
        window: Optional[WindowStats],
        feedback: PlannerFeedback,
        probe: ProbeReport,
        epoch: int,
        t: float,
        safe_active: bool = False,
        rollback_to: Optional[Dict[str, object]] = None,
    ) -> List[Action]:
        """Repairs first, then rollback, then load-driven planning.

        ``window=None`` means telemetry for this epoch failed validation:
        load response holds (no trustworthy signal) but repairs still run —
        the probe is ground truth.  ``safe_active`` suppresses *everything*.
        """
        if safe_active:
            return []
        actions = self.plan_repairs(probe, feedback, epoch, t)
        if rollback_to is not None and self.healing.rollback:
            target = int(rollback_to["fleet_size"])
            actions.append(
                Action(
                    kind="rollback",
                    epoch=epoch,
                    time_s=t,
                    target=target,
                    max_batch=int(rollback_to["max_batch"]),
                    max_wait_ms=float(rollback_to["max_wait_ms"]),
                    reason=(
                        f"recovery deadline missed; restoring epoch-"
                        f"{rollback_to['epoch']} fleet shape"
                    ),
                )
            )
            self._last_scale_epoch = epoch
            self._last_target = target
        if window is None:
            return actions
        reshaping = any(
            a.kind in ("replace", "rollback", "scale-up") for a in actions
        )
        pending_replan = {rid for rid, _, _ in probe.degraded_pending} | (
            self._replanned if self.healing.replan_degraded else set()
        )
        for action in super().plan(window, feedback):
            if action.kind == "drain" and action.replica in pending_replan:
                # the replan path owns this replica; draining it would
                # throw away a chip Algorithm 2 can keep serving on
                self._drained.discard(action.replica)
                continue
            if reshaping and action.kind in ("scale-up", "scale-down"):
                continue  # one fleet-shape change per epoch: repairs won
            actions.append(action)
        return actions


# -- actuator ----------------------------------------------------------------


class HealingActuator(Actuator):
    """The PR-7 actuator plus replace / replan / rollback."""

    def __init__(
        self,
        engine: AdaptiveServingEngine,
        config: Optional[AcceleratorConfig] = None,
        plan_policy: str = "adaptive-2",
    ) -> None:
        super().__init__(engine)
        self.config = config
        self.plan_policy = plan_policy
        #: degraded-geometry costers, memoized per mask
        self._costers: Dict[Tuple[int, int], BatchCoster] = {}

    def degraded_coster(self, masked_cols: int, masked_rows: int) -> BatchCoster:
        key = (masked_cols, masked_rows)
        if key not in self._costers:
            if self.config is None:
                raise ConfigError(
                    "replan actions need the actuator constructed with the "
                    "accelerator config"
                )
            cfg = degraded_config(self.config, PEMask(masked_cols, masked_rows))
            self._costers[key] = BatchCoster(cfg, policy=self.plan_policy)
        return self._costers[key]

    def _apply_one(self, action: Action) -> AppliedAction:
        engine = self.engine
        if action.kind == "replace":
            if action.target is None:
                raise ConfigError("replace action needs a target")
            if engine.n_active() >= action.target:
                return AppliedAction(
                    action, clipped=True, note="fleet already at target"
                )
            rid = engine.add_replica(chip=action.chip)
            return AppliedAction(action, added=[rid])
        if action.kind == "replan":
            if action.replica is None:
                raise ConfigError("replan action needs a replica")
            state = next(
                (r for r in engine.replicas if r.rid == action.replica), None
            )
            if (
                state is None
                or not state.active
                or state.degraded is None
                or state.degraded.get("replanned")
            ):
                return AppliedAction(
                    action, clipped=True, note="replica not degraded or gone"
                )
            coster = self.degraded_coster(
                int(state.degraded["masked_cols"]),
                int(state.degraded["masked_rows"]),
            )
            engine.heal_degraded(
                action.replica, coster, note=f"replan {coster.config.name}"
            )
            return AppliedAction(action)
        if action.kind == "rollback":
            if action.target is None:
                raise ConfigError("rollback action needs a target")
            added: List[int] = []
            drained: List[int] = []
            while engine.n_active() < action.target:
                added.append(engine.add_replica())
            while engine.n_active() > action.target and engine.n_active() > 1:
                victim = max(r.rid for r in engine.active_replicas())
                engine.drain_replica(victim, reason="rollback")
                drained.append(victim)
            if action.max_batch is not None and action.max_wait_ms is not None:
                engine.set_batch_policy(
                    BatchPolicy(
                        max_batch=action.max_batch,
                        max_wait_ms=action.max_wait_ms,
                    ),
                    reason="rollback",
                )
            return AppliedAction(action, added=added, drained=drained)
        return super()._apply_one(action)


# -- recovery tracking -------------------------------------------------------


class RecoveryTracker:
    """Last-known-good snapshots and per-incident recovery deadlines."""

    def __init__(self, deadline_epochs: int) -> None:
        self.deadline_epochs = deadline_epochs
        #: fleet shape at the last healthy epoch
        self.lkg: Optional[Dict[str, object]] = None
        #: the open incident, if any
        self.pending: Optional[Dict[str, object]] = None
        #: closed incidents
        self.recoveries: List[Dict[str, object]] = []
        self.rollbacks = 0
        self._recovered_base = 0
        self._rollback_base = 0

    def note(
        self,
        epoch: int,
        healthy: bool,
        causes: Sequence[str],
        fleet_size: int,
        max_batch: int,
        max_wait_ms: float,
    ) -> bool:
        """Advance one epoch; returns True when a rollback is due *now*."""
        if healthy:
            if self.pending is not None:
                self.recoveries.append(
                    {
                        "cause": self.pending["cause"],
                        "opened_epoch": self.pending["opened_epoch"],
                        "recovered_epoch": epoch,
                        "epochs_to_recover": epoch
                        - int(self.pending["opened_epoch"]),
                    }
                )
                self.pending = None
            self.lkg = {
                "epoch": epoch,
                "fleet_size": fleet_size,
                "max_batch": max_batch,
                "max_wait_ms": round(max_wait_ms, 6),
            }
            return False
        if causes and self.pending is None:
            self.pending = {
                "cause": ";".join(causes),
                "opened_epoch": epoch,
                "deadline_epoch": epoch + self.deadline_epochs,
            }
        if self.pending is not None and epoch >= int(
            self.pending["deadline_epoch"]
        ):
            # missed the deadline: request rollback and re-arm
            self.pending["deadline_epoch"] = epoch + self.deadline_epochs
            self.rollbacks += 1
            return True
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "lkg": self.lkg,
            "pending": self.pending,
            "recovered": len(self.recoveries) + self._recovered_base,
            "rollbacks": self.rollbacks + self._rollback_base,
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Rebuild from a journaled :meth:`to_dict` snapshot."""
        self.lkg = (
            dict(snapshot["lkg"]) if snapshot.get("lkg") is not None else None
        )
        self.pending = (
            dict(snapshot["pending"])
            if snapshot.get("pending") is not None
            else None
        )
        self._recovered_base = int(snapshot.get("recovered", 0))
        self._rollback_base = int(snapshot.get("rollbacks", 0))
        self.rollbacks = 0


# -- the loop ----------------------------------------------------------------


class SelfHealingControlLoop:
    """Closed-loop autoscaling that survives faults in itself."""

    def __init__(
        self,
        config: AcceleratorConfig,
        tenants: Sequence[TenantSpec],
        autoscale: AutoscalePolicy = AutoscalePolicy(),
        verifier: VerifierPolicy = VerifierPolicy(),
        healing: HealingPolicy = HealingPolicy(),
        safe_mode: SafeModePolicy = SafeModePolicy(),
        control_faults: ControlFaultSchedule = ControlFaultSchedule(),
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "least-loaded",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
        fleet: Optional[FleetSpec] = None,
        demands: Optional[Sequence[TenantDemand]] = None,
        chip_map: Optional[Dict[int, str]] = None,
    ) -> None:
        if not tenants:
            raise ConfigError("control loop needs at least one tenant")
        if not (autoscale.min_replicas <= replicas <= autoscale.max_replicas):
            raise ConfigError(
                f"initial replicas {replicas!r} outside the autoscale bounds "
                f"[{autoscale.min_replicas}, {autoscale.max_replicas}]"
            )
        self.config = config
        self.tenants = list(tenants)
        self.autoscale = autoscale
        self.verifier_policy = verifier
        self.healing = healing
        self.safe_policy = safe_mode
        self.control_faults = control_faults
        self.fleet = fleet
        self.demands = list(demands) if demands else None
        self.plan_policy = plan_policy
        self.engine = AdaptiveServingEngine(
            config,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            replicas=replicas,
            routing=routing,
            plan_policy=plan_policy,
            coster=coster,
            chip_map=chip_map,
        )
        self.channel = TelemetryChannel(
            Detector(self.engine, self.tenants), control_faults.telemetry
        )
        self.planner = self._new_planner()
        self.actuator = FlakyActuator(
            HealingActuator(self.engine, config, plan_policy),
            control_faults.actuation,
        )
        self.verifier = Verifier(verifier)
        self.safe = SafeModeController(safe_mode)
        self.tracker = RecoveryTracker(healing.recovery_deadline_epochs)
        self._crash_by_epoch = {c.epoch: c for c in control_faults.crashes}
        self._down = False
        self._down_until = -1
        self._offered_seen = 0
        self._verdict_cursor = 0
        #: per-epoch decisions log; the crash-restart source of truth
        self.journal: List[Dict[str, object]] = []
        self.all_verdicts: List[Dict[str, object]] = []
        self.crash_events: List[Dict[str, object]] = []
        self.restarts: List[Dict[str, object]] = []

    def _new_planner(self) -> HealingPlanner:
        return HealingPlanner(
            self.autoscale,
            self.engine.coster,
            {t.name: t.slo_ms for t in self.tenants},
            healing=self.healing,
            fleet=self.fleet,
            demands=self.demands,
            plan_policy=self.plan_policy,
        )

    # -- telemetry validation ---------------------------------------------

    def _validate_telemetry(
        self, delivered: Sequence[WindowStats], epoch: int, t_end: float
    ) -> Tuple[Optional[WindowStats], List[Dict[str, object]]]:
        """Pick the trustworthy window, flagging everything anomalous.

        Identity check: the window must claim this epoch and end exactly at
        this boundary (catches stale and duplicated deliveries).  Counter
        cross-check: windowed arrivals must equal the ingress counter's
        delta since the last validated boundary (catches lossy windows).
        """
        flags: List[Dict[str, object]] = []
        expected_arrivals = self.engine.offered - self._offered_seen
        window: Optional[WindowStats] = None
        for stats in delivered:
            if stats.epoch != epoch or stats.end_s != t_end:
                flags.append(
                    {
                        "epoch": epoch,
                        "kind": "identity-mismatch",
                        "claimed_epoch": stats.epoch,
                    }
                )
                continue
            if stats.arrivals != expected_arrivals:
                flags.append(
                    {
                        "epoch": epoch,
                        "kind": "counter-mismatch",
                        "claimed_arrivals": stats.arrivals,
                        "ingress_arrivals": expected_arrivals,
                    }
                )
                continue
            window = stats
        if not delivered:
            flags.append({"epoch": epoch, "kind": "lost"})
        self._offered_seen = self.engine.offered
        return window, flags

    # -- crash restart -----------------------------------------------------

    def _restart(self, epoch: int) -> None:
        """Rebuild all control state from the journal + engine ground truth."""
        engine = self.engine
        boundary = engine.now
        self.channel.swap_detector(
            Detector.resume(engine, self.tenants, boundary, epoch)
        )
        self._offered_seen = engine.offered
        lost = len(self.verifier._pending)
        self.verifier = Verifier(self.verifier_policy)
        self._verdict_cursor = 0
        frozen = max(
            (int(rec.get("frozen_until", -1)) for rec in self.journal),
            default=-1,
        )
        self.verifier._frozen_until = frozen
        planner = self._new_planner()
        planner.notify_batcher(
            engine.batch_policy.max_batch, engine.batch_policy.max_wait_ms
        )
        for rec in self.journal:
            for act in rec.get("actions", ()):
                kind = act.get("kind")
                if kind in ("scale-up", "scale-down", "replace", "rollback"):
                    planner._last_scale_epoch = int(rec["epoch"])
                    if act.get("target") is not None:
                        planner._last_target = int(act["target"])
                if kind == "retune":
                    planner._last_retune_epoch = int(rec["epoch"])
                if kind == "drain" and act.get("replica") is not None:
                    planner._drained.add(int(act["replica"]))
                if kind == "replace" and act.get("replica") is not None:
                    planner._replaced.add(int(act["replica"]))
                if kind == "replan" and act.get("replica") is not None:
                    planner._replanned.add(int(act["replica"]))
        self.planner = planner
        self.safe = SafeModeController(self.safe_policy)
        self.safe.replay(
            [
                (int(rec["epoch"]), int(rec.get("control_faults", 0)))
                for rec in self.journal
                if not rec.get("outage")
            ]
        )
        self.tracker = RecoveryTracker(self.healing.recovery_deadline_epochs)
        snapshots = [
            rec["recovery"] for rec in self.journal if "recovery" in rec
        ]
        if snapshots:
            self.tracker.restore(snapshots[-1])
        self.restarts.append(
            {
                "epoch": epoch,
                "journal_epochs": len(self.journal),
                "expectations_lost": lost,
                "frozen_until": frozen,
            }
        )

    # -- the run -----------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
        data_faults: Optional[FaultSchedule] = None,
        link_windows: Sequence[Tuple[float, float, float]] = (),
    ) -> ControlReport:
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("chaos_control_run"):
            return self._run(requests, duration_s, extra_meta, data_faults, link_windows)

    def _run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]],
        data_faults: Optional[FaultSchedule],
        link_windows: Sequence[Tuple[float, float, float]],
    ) -> ControlReport:
        engine = self.engine
        policy = self.autoscale
        if data_faults is not None and not data_faults.is_empty:
            apply_fault_schedule(engine, data_faults, self.config, link_windows)
        engine.ingest(requests)
        self.planner.notify_batcher(
            engine.batch_policy.max_batch, engine.batch_policy.max_wait_ms
        )
        n_epochs = int(math.ceil(duration_s / policy.epoch_s - 1e-9))
        for k in range(n_epochs):
            t_end = min((k + 1) * policy.epoch_s, duration_s)
            crash = self._crash_by_epoch.get(k)
            if crash is not None and not self._down:
                self._down = True
                self._down_until = k + crash.down_epochs
                self.crash_events.append(
                    {
                        "epoch": k,
                        "down_epochs": crash.down_epochs,
                        "expectations_lost": len(self.verifier._pending),
                        "journal_epochs": len(self.journal),
                    }
                )
            restarted = False
            if (
                self._down
                and k >= self._down_until
                and self.healing.restart_on_crash
            ):
                self._restart(k)
                self._down = False
                restarted = True
            if self._down:
                # outage: the fleet keeps serving, nobody is steering
                engine.advance_to(t_end)
                self.journal.append(
                    {
                        "epoch": k,
                        "outage": True,
                        "fleet_size": engine.n_active(),
                    }
                )
                continue
            engine.advance_to(t_end)
            feedback = self.verifier.check(engine, k)
            new_verdicts = self.verifier.verdicts[self._verdict_cursor :]
            self._verdict_cursor = len(self.verifier.verdicts)
            self.all_verdicts.extend(new_verdicts)
            delivered = self.channel.deliver(t_end)
            if self.healing.telemetry_guard:
                window, telemetry_flags = self._validate_telemetry(
                    delivered, k, t_end
                )
            else:
                # the unguarded loop trusts whatever arrived last
                window = delivered[-1] if delivered else None
                telemetry_flags = []
                self._offered_seen = engine.offered
            probe = probe_fleet(engine, self.planner.replaced, engine.now)
            failed_verdicts = sum(
                1 for v in new_verdicts if v["status"] == "failed"
            )
            fault_count = (
                len(telemetry_flags) + failed_verdicts + (1 if restarted else 0)
            )
            safe_active = self.safe.update(k, fault_count)
            breach = window is not None and (
                window.slo_p95_frac > policy.high_band or window.shed > 0
            )
            causes: List[str] = []
            if probe.crashed_unreplaced:
                causes.append("replica-crash")
            if probe.degraded_pending:
                causes.append("pe-degrade")
            if window is not None and window.shed > 0:
                causes.append("shed")
            if telemetry_flags:
                causes.append("telemetry")
            if failed_verdicts:
                causes.append("actuation")
            healthy = (
                window is not None
                and not breach
                and not telemetry_flags
                and not failed_verdicts
                and not probe.crashed_unreplaced
                and not probe.degraded_pending
                and not safe_active
            )
            rollback_due = self.tracker.note(
                k,
                healthy,
                causes,
                engine.n_active(),
                engine.batch_policy.max_batch,
                engine.batch_policy.max_wait_ms,
            )
            rollback_to = (
                self.tracker.lkg
                if rollback_due and self.healing.rollback and self.tracker.lkg
                else None
            )
            actions = self.planner.plan_epoch(
                window,
                feedback,
                probe,
                k,
                t_end,
                safe_active=safe_active,
                rollback_to=rollback_to,
            )
            applied = self.actuator.apply(actions, epoch=k)
            self.verifier.register(applied, k)
            for app in applied:
                if "lost" in app.note:
                    continue  # the command never reached the engine
                if app.action.kind in ("retune", "rollback") and (
                    app.action.max_batch is not None
                ):
                    self.planner.notify_batcher(
                        app.action.max_batch, app.action.max_wait_ms
                    )
            self.journal.append(
                {
                    "epoch": k,
                    "window": window.to_dict() if window is not None else None,
                    "delivered_epochs": [s.epoch for s in delivered],
                    "telemetry_faults": telemetry_flags,
                    "probe": probe.to_dict(),
                    "actions": [app.to_dict() for app in applied],
                    "verdicts": new_verdicts,
                    "control_faults": fault_count,
                    "safe_mode": safe_active,
                    "frozen": k <= feedback.frozen_until_epoch,
                    "frozen_until": self.verifier._frozen_until,
                    "fleet_size": engine.n_active(),
                    "max_batch": engine.batch_policy.max_batch,
                    "recovery": self.tracker.to_dict(),
                }
            )
        report = engine.finish(duration_s, extra_meta)
        final_feedback = self.verifier.check(engine, n_epochs)
        self.all_verdicts.extend(self.verifier.verdicts[self._verdict_cursor :])
        summary = dict(report.summary)
        action_counts: Dict[str, int] = {}
        for rec in self.journal:
            for act in rec.get("actions", ()):
                action_counts[act["kind"]] = action_counts.get(act["kind"], 0) + 1
        verdict_counts: Dict[str, int] = {}
        for verdict in self.all_verdicts:
            verdict_counts[verdict["status"]] = (
                verdict_counts.get(verdict["status"], 0) + 1
            )
        summary["control"] = {
            "policy": policy.to_dict(),
            "verifier": self.verifier_policy.to_dict(),
            "epochs": self.journal,
            "n_epochs": n_epochs,
            "actions_by_kind": dict(sorted(action_counts.items())),
            "verdicts": self.all_verdicts,
            "verdicts_by_status": dict(sorted(verdict_counts.items())),
            "freezes": self.verifier.freezes,
            "unresolved_expectations": len(final_feedback.failed_kinds),
        }
        summary["healing"] = {
            "policy": self.healing.to_dict(),
            "safe_mode": self.safe_policy.to_dict(),
            "control_faults": self.control_faults.to_dict(),
            "telemetry_injected": self.channel.injected,
            "actuation_injected": self.actuator.injected,
            "crash_events": self.crash_events,
            "restarts": self.restarts,
            "safe_mode_intervals": self.safe.intervals,
            "telemetry_flags": sum(
                len(rec.get("telemetry_faults", ()))
                for rec in self.journal
            ),
            "recovery": self.tracker.to_dict(),
            "placements": self.planner.placements,
        }
        return ControlReport(summary=summary, serving=report, epochs=self.journal)
