"""Control-plane chaos: faults in the *controller*, not just the fleet.

The data-plane fault model (:mod:`repro.resilience.faults`) breaks chips;
this module breaks the loop that is supposed to notice.  Three fault
families, all seeded and epoch-addressed so a run stays a deterministic
function of (workload seed, schedules, policies):

* :class:`TelemetryFault` — the detector's window is tampered with in
  flight: ``loss`` delivers an undercounted window (a fraction of the
  records never reached the aggregator), ``stale`` re-delivers the
  previous epoch's window instead of the current one, ``duplicate``
  delivers the previous window *and* the current one.  The
  :class:`TelemetryChannel` sits between the detector and the loop and is
  the only place tampering happens — the engine's ground truth is never
  touched, which is what lets the loop cross-check;
* :class:`ActuationFault` — commands that fail (``fail``: the epoch's
  actions are acknowledged but never reach the engine) or partially apply
  (``partial``: a scale-up lands half its replicas).  The
  :class:`FlakyActuator` wrapper injects these; the verifier's
  expectation checks are what catch them;
* :class:`LoopCrash` — the controller process dies at an epoch boundary,
  stays down for ``down_epochs`` (the fleet keeps serving, frozen), and
  restarts from its decisions journal (see
  :class:`repro.control.healing.SelfHealingControlLoop`).

:class:`SafeModePolicy` is the last line: when detected control-plane
faults inside a sliding window cross a threshold, the loop freezes all
actuation (no scaling, no retune, no repairs) and just keeps serving —
a mis-behaving controller must never be able to shrink a healthy fleet.

:func:`apply_fault_schedule` threads a data-plane
:class:`~repro.resilience.faults.FaultSchedule` through an
:class:`~repro.serve.engine.AdaptiveServingEngine` — crashes armed as
batch-boundary fail-stops, fail-slow windows, timed per-replica PE masks
(with the naive frozen-schedule slowdown until someone replans), and link
faults as fleet-wide service windows.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.resilience.degrade import degraded_config
from repro.resilience.faults import FaultSchedule
from repro.serve.engine import AdaptiveServingEngine
from repro.control.actuator import Actuator, AppliedAction
from repro.control.policy import Action
from repro.control.telemetry import Detector, WindowStats

__all__ = [
    "TELEMETRY_FAULT_KINDS",
    "ACTUATION_FAULT_MODES",
    "TelemetryFault",
    "ActuationFault",
    "LoopCrash",
    "ControlFaultSchedule",
    "TelemetryChannel",
    "FlakyActuator",
    "SafeModePolicy",
    "SafeModeController",
    "naive_mask_factor",
    "apply_fault_schedule",
]

TELEMETRY_FAULT_KINDS = ("loss", "stale", "duplicate")
ACTUATION_FAULT_MODES = ("fail", "partial")


def _check_epoch(value: int, what: str, minimum: int = 0) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{what} must be an int, got {value!r}")
    if value < minimum:
        raise ConfigError(f"{what} must be >= {minimum}, got {value!r}")


@dataclass(frozen=True)
class TelemetryFault:
    """One tampered telemetry delivery, addressed by control epoch."""

    kind: str
    epoch: int
    #: ``loss`` only: fraction of the window's records that never arrive
    drop_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in TELEMETRY_FAULT_KINDS:
            raise ConfigError(
                f"unknown telemetry fault kind {self.kind!r}; "
                f"choose from {TELEMETRY_FAULT_KINDS}"
            )
        # stale/duplicate replay the *previous* window, so epoch 0 has
        # nothing to replay — require at least one observed window
        _check_epoch(
            self.epoch,
            f"telemetry {self.kind!r} epoch",
            minimum=0 if self.kind == "loss" else 1,
        )
        if not 0 < self.drop_frac < 1:
            raise ConfigError(
                f"telemetry drop_frac must be in (0, 1), got {self.drop_frac!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "epoch": self.epoch}
        if self.kind == "loss":
            out["drop_frac"] = round(self.drop_frac, 6)
        return out


@dataclass(frozen=True)
class ActuationFault:
    """One epoch whose actions fail or partially apply."""

    epoch: int
    mode: str = "fail"

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "actuation fault epoch")
        if self.mode not in ACTUATION_FAULT_MODES:
            raise ConfigError(
                f"unknown actuation fault mode {self.mode!r}; "
                f"choose from {ACTUATION_FAULT_MODES}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"epoch": self.epoch, "mode": self.mode}


@dataclass(frozen=True)
class LoopCrash:
    """The controller dies at ``epoch`` and is down for ``down_epochs``.

    During the outage the fleet keeps serving at its last shape (nobody
    scales, nobody repairs); at ``epoch + down_epochs`` the loop restarts
    and must resume from its decisions journal.
    """

    epoch: int
    down_epochs: int = 1

    def __post_init__(self) -> None:
        _check_epoch(self.epoch, "loop crash epoch", minimum=1)
        _check_epoch(self.down_epochs, "loop crash down_epochs")

    def to_dict(self) -> Dict[str, object]:
        return {"epoch": self.epoch, "down_epochs": self.down_epochs}


@dataclass(frozen=True)
class ControlFaultSchedule:
    """Everything injected into the control plane of one run."""

    telemetry: Tuple[TelemetryFault, ...] = ()
    actuation: Tuple[ActuationFault, ...] = ()
    crashes: Tuple[LoopCrash, ...] = ()
    seed: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "telemetry",
            tuple(sorted(self.telemetry, key=lambda f: (f.epoch, f.kind))),
        )
        object.__setattr__(
            self, "actuation", tuple(sorted(self.actuation, key=lambda f: f.epoch))
        )
        object.__setattr__(
            self, "crashes", tuple(sorted(self.crashes, key=lambda f: f.epoch))
        )
        for label, faults in (
            ("telemetry", self.telemetry),
            ("actuation", self.actuation),
            ("crashes", self.crashes),
        ):
            seen: Dict[int, int] = {}
            for n, fault in enumerate(faults):
                if fault.epoch in seen:
                    raise ConfigError(
                        f"{label}: duplicate fault at epoch {fault.epoch} "
                        f"(entries {seen[fault.epoch]} and {n})"
                    )
                seen[fault.epoch] = n

    @property
    def is_empty(self) -> bool:
        return not self.telemetry and not self.actuation and not self.crashes

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "telemetry": [f.to_dict() for f in self.telemetry],
            "actuation": [f.to_dict() for f in self.actuation],
            "crashes": [f.to_dict() for f in self.crashes],
        }


# -- telemetry tampering -----------------------------------------------------


def _degrade_stats(stats: WindowStats, drop_frac: float) -> WindowStats:
    """A lossy copy of one window: a fraction of records never arrived."""
    keep = 1.0 - drop_frac
    arrivals = int(stats.arrivals * keep)
    completed = int(stats.completed * keep)
    span = stats.end_s - stats.start_s
    return dataclasses.replace(
        stats,
        arrivals=arrivals,
        completed=completed,
        shed=int(stats.shed * keep),
        deadline_met=min(stats.deadline_met, completed),
        shed_rate=(int(stats.shed * keep) / arrivals) if arrivals else 0.0,
        arrival_rate_rps=arrivals / span if span else 0.0,
    )


class TelemetryChannel:
    """The delivery path between the detector and the loop.

    All tampering happens here: the detector always observes the true
    window (its internal cursors must stay exact), and the channel decides
    what the *loop* receives for that epoch.  ``deliver`` returns a list —
    an empty list models a wholly lost delivery, two entries model a
    duplicate — and the loop's consistency checks decide what to trust.
    """

    def __init__(
        self,
        detector: Detector,
        faults: Sequence[TelemetryFault] = (),
    ) -> None:
        self.detector = detector
        self._by_epoch: Dict[int, TelemetryFault] = {}
        for fault in faults:
            self._by_epoch[fault.epoch] = fault
        #: true windows in epoch order (the replay source for stale/dup)
        self._history: List[WindowStats] = []
        #: (epoch, kind) of every fault actually exercised
        self.injected: List[Dict[str, object]] = []

    def swap_detector(self, detector: Detector) -> None:
        """A restarted loop plugs its resumed detector back in."""
        self.detector = detector

    def deliver(self, t_end: float) -> List[WindowStats]:
        real = self.detector.observe(t_end)
        self._history.append(real)
        fault = self._by_epoch.get(real.epoch)
        if fault is None:
            return [real]
        self.injected.append({"epoch": real.epoch, "kind": fault.kind})
        if fault.kind == "loss":
            return [_degrade_stats(real, fault.drop_frac)]
        if len(self._history) < 2:
            return [real]  # nothing to replay yet; delivery is clean
        previous = self._history[-2]
        if fault.kind == "stale":
            return [previous]
        return [previous, real]  # duplicate


# -- actuation tampering -----------------------------------------------------


class FlakyActuator:
    """Wraps an actuator; on faulted epochs commands fail or half-apply.

    The returned :class:`AppliedAction` records always carry the *original*
    action (never the weakened one that actually ran), so the verifier's
    expectation is the intended state — under-actuation surfaces as a
    failed verification, which is the loop's detection path.
    """

    def __init__(
        self,
        inner: Actuator,
        faults: Sequence[ActuationFault] = (),
    ) -> None:
        self.inner = inner
        self._by_epoch: Dict[int, ActuationFault] = {}
        for fault in faults:
            self._by_epoch[fault.epoch] = fault
        self.injected: List[Dict[str, object]] = []

    @property
    def engine(self) -> AdaptiveServingEngine:
        return self.inner.engine

    def apply(self, actions: Sequence[Action], epoch: int) -> List[AppliedAction]:
        fault = self._by_epoch.get(epoch)
        if fault is None or not actions:
            return self.inner.apply(actions)
        self.injected.append({"epoch": epoch, "mode": fault.mode})
        if fault.mode == "fail":
            return [
                AppliedAction(action, note="actuation-fault: command lost")
                for action in actions
            ]
        applied: List[AppliedAction] = []
        for action in actions:
            weakened = self._weaken(action)
            if weakened is None:
                applied.append(
                    AppliedAction(action, note="actuation-fault: command lost")
                )
                continue
            inner_applied = self.inner.apply([weakened])[0]
            applied.append(
                AppliedAction(
                    action,
                    added=inner_applied.added,
                    drained=inner_applied.drained,
                    clipped=inner_applied.clipped,
                    note="actuation-fault: partial",
                )
            )
        return applied

    def _weaken(self, action: Action) -> Optional[Action]:
        """Partial mode: scale/replace lands half; anything else is lost."""
        if action.kind in ("scale-up", "replace") and action.target is not None:
            active = self.engine.n_active()
            need = action.target - active
            if need > 1:
                return dataclasses.replace(action, target=active + need // 2)
            return action  # a single add cannot half-apply
        return None


# -- safe mode ---------------------------------------------------------------


@dataclass(frozen=True)
class SafeModePolicy:
    """Freeze actuation when the control plane itself is misbehaving."""

    enabled: bool = True
    #: detected control-plane faults inside the window that trip safe mode
    fault_threshold: int = 3
    window_epochs: int = 6
    #: consecutive fault-free epochs required to leave safe mode
    clean_epochs: int = 4

    def __post_init__(self) -> None:
        _check_epoch(self.fault_threshold, "safe-mode fault_threshold", minimum=1)
        _check_epoch(self.window_epochs, "safe-mode window_epochs", minimum=1)
        _check_epoch(self.clean_epochs, "safe-mode clean_epochs", minimum=1)

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "fault_threshold": self.fault_threshold,
            "window_epochs": self.window_epochs,
            "clean_epochs": self.clean_epochs,
        }


class SafeModeController:
    """Sliding-window counter of detected control-plane faults."""

    def __init__(self, policy: SafeModePolicy) -> None:
        self.policy = policy
        self.active = False
        self._events: List[Tuple[int, int]] = []
        self._clean = 0
        self.intervals: List[Dict[str, object]] = []

    def update(self, epoch: int, fault_count: int) -> bool:
        """Record this epoch's detected faults; returns the active flag."""
        if not self.policy.enabled:
            return False
        self._events.append((epoch, fault_count))
        window_total = sum(
            count
            for e, count in self._events
            if e > epoch - self.policy.window_epochs
        )
        if not self.active:
            if window_total >= self.policy.fault_threshold:
                self.active = True
                self._clean = 0
                self.intervals.append(
                    {
                        "entered_epoch": epoch,
                        "exited_epoch": None,
                        "window_faults": window_total,
                    }
                )
        else:
            self._clean = self._clean + 1 if fault_count == 0 else 0
            if self._clean >= self.policy.clean_epochs:
                self.active = False
                self.intervals[-1]["exited_epoch"] = epoch
        return self.active

    def replay(self, records: Sequence[Tuple[int, int]]) -> None:
        """Rebuild state from journaled (epoch, fault_count) pairs."""
        for epoch, count in records:
            self.update(epoch, count)


# -- data-plane schedule → engine -------------------------------------------


def naive_mask_factor(config: AcceleratorConfig, masked_cols: int, masked_rows: int) -> float:
    """Proportional slowdown of the healthy schedule on a masked array.

    Freezing the healthy schedule and running it on ``(Tin - cols) x
    (Tout - rows)`` lanes costs the full-array work spread over the
    survivors — the bound Algorithm 2's replan beats whenever the network
    was not saturating the lanes the mask removed (a narrow conv1 loses
    nothing to a column mask once replanned; see ``docs/resilience.md``).
    """
    from repro.resilience.faults import PEMask

    degraded = degraded_config(config, PEMask(masked_cols, masked_rows))
    return (config.tin * config.tout) / (degraded.tin * degraded.tout)


def apply_fault_schedule(
    engine: AdaptiveServingEngine,
    schedule: FaultSchedule,
    config: AcceleratorConfig,
    link_windows: Sequence[Tuple[float, float, float]] = (),
) -> None:
    """Arm a data-plane fault schedule on a live adaptive engine.

    * crashes → :meth:`~AdaptiveServingEngine.schedule_crash` (batch-
      boundary fail-stop, applied at the exact fault instant mid-epoch);
    * fail-slow → :meth:`~AdaptiveServingEngine.set_slow` windows;
    * timed PE masks → :meth:`~AdaptiveServingEngine.mark_degraded` at the
      naive frozen-schedule factor (the control plane replans later);
    * link faults → fleet-wide service windows.  The caller prices each
      fault into a service multiplier (``link_windows``) because that
      needs pipeline context the engine does not have; the schedule's raw
      link faults are refused here if no pricing was supplied.
    """
    schedule.validate_for(len(engine.replicas))
    for fault in schedule.replica_faults:
        if fault.kind == "crash":
            engine.schedule_crash(fault.replica, fault.time_s, reason="fault-schedule")
        else:
            end = fault.time_s + fault.duration_s
            engine.set_slow(fault.replica, fault.factor, fault.time_s, end)
    for mask_fault in schedule.mask_faults:
        factor = naive_mask_factor(
            config, mask_fault.mask.masked_cols, mask_fault.mask.masked_rows
        )
        engine.mark_degraded(
            mask_fault.replica,
            mask_fault.mask.masked_cols,
            mask_fault.mask.masked_rows,
            factor,
            mask_fault.time_s,
        )
    if schedule.link_faults and not link_windows:
        raise ConfigError(
            "schedule has link faults but no priced link_windows were "
            "supplied; compute service multipliers from the pipeline plan"
        )
    for from_s, until_s, factor in link_windows:
        if factor > 1.0:
            engine.add_service_window(from_s, until_s, factor)
