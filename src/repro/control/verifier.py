"""The verifier: closes the loop behind the actuator.

Two jobs, both fed back into the planner:

* **action verification** — every applied action registers an expectation
  (fleet size reached, replica actually retired, batcher knobs live) with
  a deadline of ``verify_deadline_epochs``.  At each epoch boundary the
  verifier resolves expectations against the engine's real state; an
  expectation that misses its deadline is reported as *failed* (and the
  planner sees the failure kinds in its feedback).  In this simulator
  actuation is synchronous so failures indicate a control-plane bug — the
  check is the point: the loop never *assumes* an action took effect;
* **oscillation guard** — scale direction flips (up followed by down or
  vice versa) inside a sliding window of epochs are counted; at
  ``max_flips`` the verifier freezes scaling for ``freeze_epochs`` via
  :class:`~repro.control.policy.PlannerFeedback`.  A policy whose bands
  are mis-tuned then degrades to a static fleet instead of thrashing
  chips on every epoch.

The verdict log (confirmed/failed, epochs waited, freezes) is part of the
decisions log and byte-stable across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.serve.engine import AdaptiveServingEngine
from repro.control.actuator import AppliedAction
from repro.control.policy import PlannerFeedback

__all__ = ["Verifier", "VerifierPolicy", "Expectation"]


@dataclass(frozen=True)
class VerifierPolicy:
    """Deadlines and oscillation-guard knobs."""

    #: epochs an action may take to become visible in the fleet state
    verify_deadline_epochs: int = 1
    #: scale-direction flips within ``oscillation_window`` that trip the guard
    max_flips: int = 3
    oscillation_window: int = 8
    #: epochs scaling stays frozen once the guard trips
    freeze_epochs: int = 6

    def __post_init__(self) -> None:
        if self.verify_deadline_epochs < 0:
            raise ConfigError(
                f"verify_deadline_epochs must be >= 0, "
                f"got {self.verify_deadline_epochs!r}"
            )
        if self.max_flips < 1:
            raise ConfigError(f"max_flips must be >= 1, got {self.max_flips!r}")
        if self.oscillation_window < 2:
            raise ConfigError(
                f"oscillation_window must be >= 2, got {self.oscillation_window!r}"
            )
        if self.freeze_epochs < 1:
            raise ConfigError(
                f"freeze_epochs must be >= 1, got {self.freeze_epochs!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "verify_deadline_epochs": self.verify_deadline_epochs,
            "max_flips": self.max_flips,
            "oscillation_window": self.oscillation_window,
            "freeze_epochs": self.freeze_epochs,
        }


@dataclass
class Expectation:
    """One applied action's postcondition, pending until resolved."""

    kind: str
    registered_epoch: int
    deadline_epoch: int
    #: fleet-size actions: expected active count
    target: Optional[int] = None
    #: drain actions: rid that must be retired
    replica: Optional[int] = None
    #: retune actions: expected live knobs
    max_batch: Optional[int] = None

    def satisfied(self, engine: AdaptiveServingEngine) -> bool:
        if self.kind in ("scale-up", "scale-down"):
            return engine.n_active() == self.target
        if self.kind == "drain":
            state = next(
                (r for r in engine.replicas if r.rid == self.replica), None
            )
            return state is None or not state.active
        if self.kind == "retune":
            return engine.batch_policy.max_batch == self.max_batch
        if self.kind in ("replace", "rollback"):
            # healing actions restoring a fleet shape (repro.control.healing)
            if (
                self.kind == "rollback"
                and self.max_batch is not None
                and engine.batch_policy.max_batch != self.max_batch
            ):
                return False
            return engine.n_active() == self.target
        if self.kind == "replan":
            state = next(
                (r for r in engine.replicas if r.rid == self.replica), None
            )
            return bool(
                state is not None
                and state.degraded
                and state.degraded.get("replanned")
            )
        return False


class Verifier:
    """Resolves expectations and guards against oscillation."""

    def __init__(self, policy: VerifierPolicy = VerifierPolicy()) -> None:
        self.policy = policy
        self._pending: List[Expectation] = []
        #: (epoch, +1 for up / -1 for down) scale-direction history
        self._directions: List[tuple] = []
        self._frozen_until = -1
        #: resolved verdicts, in resolution order (part of the decisions log)
        self.verdicts: List[Dict[str, object]] = []
        self.freezes: List[Dict[str, object]] = []

    def register(self, applied: Sequence[AppliedAction], epoch: int) -> None:
        """Turn applied actions into pending expectations."""
        for app in applied:
            action = app.action
            expectation = Expectation(
                kind=action.kind,
                registered_epoch=epoch,
                deadline_epoch=epoch + self.policy.verify_deadline_epochs,
            )
            if action.kind in ("scale-up", "scale-down"):
                self._directions.append(
                    (epoch, 1 if action.kind == "scale-up" else -1)
                )
                if app.clipped:
                    continue  # fleet bounds clipped it; no exact target holds
                expectation.target = action.target
            elif action.kind == "drain":
                if app.clipped:
                    continue  # nothing to verify; replica was already gone
                expectation.replica = action.replica
            elif action.kind == "retune":
                expectation.max_batch = action.max_batch
            elif action.kind in ("replace", "rollback"):
                # repairs restore a known shape; they are not load-driven
                # scale decisions, so they never feed the oscillation guard
                if app.clipped:
                    continue
                expectation.target = action.target
                if action.kind == "rollback":
                    expectation.max_batch = action.max_batch
            elif action.kind == "replan":
                if app.clipped:
                    continue
                expectation.replica = action.replica
            self._pending.append(expectation)

    def check(self, engine: AdaptiveServingEngine, epoch: int) -> PlannerFeedback:
        """Resolve pending expectations; return the planner's feedback."""
        failed_kinds: List[str] = []
        still_pending: List[Expectation] = []
        for exp in self._pending:
            if exp.satisfied(engine):
                self.verdicts.append(
                    {
                        "kind": exp.kind,
                        "epoch": exp.registered_epoch,
                        "status": "confirmed",
                        "epochs_waited": epoch - exp.registered_epoch,
                    }
                )
            elif epoch > exp.deadline_epoch:
                self.verdicts.append(
                    {
                        "kind": exp.kind,
                        "epoch": exp.registered_epoch,
                        "status": "failed",
                        "epochs_waited": epoch - exp.registered_epoch,
                    }
                )
                failed_kinds.append(exp.kind)
            else:
                still_pending.append(exp)
        self._pending = still_pending

        # oscillation guard over the recent direction history
        window_start = epoch - self.policy.oscillation_window
        recent = [d for d in self._directions if d[0] > window_start]
        self._directions = recent
        flips = sum(
            1
            for a, b in zip(recent, recent[1:])
            if a[1] != b[1]
        )
        if flips >= self.policy.max_flips and epoch > self._frozen_until:
            self._frozen_until = epoch + self.policy.freeze_epochs
            self.freezes.append(
                {
                    "epoch": epoch,
                    "until_epoch": self._frozen_until,
                    "flips": flips,
                }
            )
        return PlannerFeedback(
            frozen_until_epoch=self._frozen_until,
            failed_kinds=sorted(failed_kinds),
        )
