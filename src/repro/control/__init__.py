"""Closed-loop autoscaling control plane for the serving fleet
(``repro autoscale``).

Every serving-stack knob used to be frozen for a whole run: replica
count, batcher max-batch/max-wait, and drain/repair were fixed at
construction.  This package drives them at runtime — the same adaptive
insight as the paper's Algorithm 2 (pick the parallelization that fits
the *current* layer), applied one level up: pick the fleet configuration
that fits the *current* traffic window.

The loop runs at simulated-time epoch boundaries, split the classic way:

- :mod:`repro.control.telemetry` — the **detector**: sliding-window
  p95/p99-vs-SLO, shed rate, queue depth, per-replica utilization and
  observed/expected service ratios, windowed exactly (no double counting
  across boundaries) and byte-stable;
- :mod:`repro.control.policy` — the **planner**: deterministic hysteresis
  bands with cooldowns; demand-sizes the fleet from `plan_batch`-costed
  per-replica capacity (through the schedule cache), retunes
  max-batch/max-wait against the tightest SLO, and triggers drain/repair
  from fail-slow health ratios;
- :mod:`repro.control.actuator` — the **actuator**: applies decisions to
  a live :class:`~repro.serve.engine.AdaptiveServingEngine` — runtime
  add/drain of replicas, live batcher reconfiguration;
- :mod:`repro.control.verifier` — the **verifier**: confirms every action
  took effect within a deadline and freezes scaling when it detects
  oscillation;
- :mod:`repro.control.loop` — :class:`~repro.control.loop.ControlLoop`
  stepping all four per epoch, plus the static peak-/mean-provisioned
  baselines (:func:`~repro.control.loop.run_static`) the autoscaler is
  judged against on diurnal flash-crowd traces in
  ``benchmarks/bench_control.py``.

PR 10 adds the self-healing layer on top:

- :mod:`repro.control.chaos` — fault injection for the control plane
  itself: tampered telemetry windows (loss/stale/duplicate), actuation
  that fails or partially applies, controller crash-restart, and the
  safe-mode controller that freezes actuation when control-plane faults
  storm;
- :mod:`repro.control.healing` —
  :class:`~repro.control.healing.SelfHealingControlLoop`: the PR-7 loop
  plus fleet probes, repair planning (replace crashed replicas, replan
  degraded geometries through Algorithm 2, placement-aware spares),
  recovery deadlines with rollback to last-known-good, and journal-based
  restart after controller crashes;
- :mod:`repro.control.chaos_scenarios` — the chaos-under-autoscaling
  suite (``repro chaos --control``): every scenario runs four arms on
  identical seeded traffic and enforces named invariants.

See ``docs/autoscaling.md`` for the loop architecture and
``docs/chaos_control.md`` for the self-healing design.
"""

from repro.control.actuator import Actuator, AppliedAction
from repro.control.chaos import (
    ACTUATION_FAULT_MODES,
    TELEMETRY_FAULT_KINDS,
    ActuationFault,
    ControlFaultSchedule,
    FlakyActuator,
    LoopCrash,
    SafeModeController,
    SafeModePolicy,
    TelemetryChannel,
    TelemetryFault,
    apply_fault_schedule,
    naive_mask_factor,
)
from repro.control.chaos_scenarios import (
    CONTROL_INVARIANT_NAMES,
    CONTROL_SCENARIO_NAMES,
    ControlChaosScenario,
    build_control_scenario,
    run_control_scenario,
)
from repro.control.healing import (
    HealingActuator,
    HealingPlanner,
    HealingPolicy,
    ProbeReport,
    RecoveryTracker,
    SelfHealingControlLoop,
    probe_fleet,
)
from repro.control.loop import (
    ControlLoop,
    ControlReport,
    run_static,
    static_fleet_sizes,
)
from repro.control.policy import (
    ACTION_KINDS,
    BATCH_CANDIDATES,
    Action,
    AutoscalePolicy,
    Planner,
    PlannerFeedback,
)
from repro.control.telemetry import Detector, WindowStats
from repro.control.verifier import Expectation, Verifier, VerifierPolicy

__all__ = [
    "ACTION_KINDS",
    "ACTUATION_FAULT_MODES",
    "Action",
    "ActuationFault",
    "Actuator",
    "AppliedAction",
    "AutoscalePolicy",
    "BATCH_CANDIDATES",
    "CONTROL_INVARIANT_NAMES",
    "CONTROL_SCENARIO_NAMES",
    "ControlChaosScenario",
    "ControlFaultSchedule",
    "ControlLoop",
    "ControlReport",
    "Detector",
    "Expectation",
    "FlakyActuator",
    "HealingActuator",
    "HealingPlanner",
    "HealingPolicy",
    "LoopCrash",
    "Planner",
    "PlannerFeedback",
    "ProbeReport",
    "RecoveryTracker",
    "SafeModeController",
    "SafeModePolicy",
    "SelfHealingControlLoop",
    "TELEMETRY_FAULT_KINDS",
    "TelemetryChannel",
    "TelemetryFault",
    "Verifier",
    "VerifierPolicy",
    "WindowStats",
    "apply_fault_schedule",
    "build_control_scenario",
    "naive_mask_factor",
    "probe_fleet",
    "run_control_scenario",
]
