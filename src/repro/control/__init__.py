"""Closed-loop autoscaling control plane for the serving fleet
(``repro autoscale``).

Every serving-stack knob used to be frozen for a whole run: replica
count, batcher max-batch/max-wait, and drain/repair were fixed at
construction.  This package drives them at runtime — the same adaptive
insight as the paper's Algorithm 2 (pick the parallelization that fits
the *current* layer), applied one level up: pick the fleet configuration
that fits the *current* traffic window.

The loop runs at simulated-time epoch boundaries, split the classic way:

- :mod:`repro.control.telemetry` — the **detector**: sliding-window
  p95/p99-vs-SLO, shed rate, queue depth, per-replica utilization and
  observed/expected service ratios, windowed exactly (no double counting
  across boundaries) and byte-stable;
- :mod:`repro.control.policy` — the **planner**: deterministic hysteresis
  bands with cooldowns; demand-sizes the fleet from `plan_batch`-costed
  per-replica capacity (through the schedule cache), retunes
  max-batch/max-wait against the tightest SLO, and triggers drain/repair
  from fail-slow health ratios;
- :mod:`repro.control.actuator` — the **actuator**: applies decisions to
  a live :class:`~repro.serve.engine.AdaptiveServingEngine` — runtime
  add/drain of replicas, live batcher reconfiguration;
- :mod:`repro.control.verifier` — the **verifier**: confirms every action
  took effect within a deadline and freezes scaling when it detects
  oscillation;
- :mod:`repro.control.loop` — :class:`~repro.control.loop.ControlLoop`
  stepping all four per epoch, plus the static peak-/mean-provisioned
  baselines (:func:`~repro.control.loop.run_static`) the autoscaler is
  judged against on diurnal flash-crowd traces in
  ``benchmarks/bench_control.py``.

See ``docs/autoscaling.md`` for the loop architecture, the policy knobs,
and the bench methodology.
"""

from repro.control.actuator import Actuator, AppliedAction
from repro.control.loop import (
    ControlLoop,
    ControlReport,
    run_static,
    static_fleet_sizes,
)
from repro.control.policy import (
    ACTION_KINDS,
    BATCH_CANDIDATES,
    Action,
    AutoscalePolicy,
    Planner,
    PlannerFeedback,
)
from repro.control.telemetry import Detector, WindowStats
from repro.control.verifier import Expectation, Verifier, VerifierPolicy

__all__ = [
    "ACTION_KINDS",
    "Action",
    "Actuator",
    "AppliedAction",
    "AutoscalePolicy",
    "BATCH_CANDIDATES",
    "ControlLoop",
    "ControlReport",
    "Detector",
    "Expectation",
    "Planner",
    "PlannerFeedback",
    "Verifier",
    "VerifierPolicy",
    "WindowStats",
    "run_static",
    "static_fleet_sizes",
]
