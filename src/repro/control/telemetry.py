"""The detector: sliding-window telemetry over the serving event stream.

A :class:`Detector` is stepped once per control epoch.  Each step reduces
everything that *happened* in the window ``(prev_epoch_end, epoch_end]`` —
completions are assigned to the window their ``finish_s`` falls in, never
the window they were dispatched in — into one :class:`WindowStats` record:
latency percentiles against each tenant's SLO, shed and deadline-miss
rates, queue depth at the boundary, per-replica utilization and
observed/expected service ratios (the health signal the planner's drain
rule consumes, mirroring :class:`repro.serve.failover.HealthChecker`'s
``slow_threshold``).

Window assignment is exact: every completion lands in exactly one window
(finish times are strictly greater than the dispatch instant, and the
engine never runs past the boundary the controller asked for), and shed /
arrival counters are cumulative-delta based, so summing any column over
the windows reproduces the run totals.  All floats are rounded the same
way :mod:`repro.serve.metrics` rounds, so the telemetry log is byte-stable
across reruns at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.serve.engine import AdaptiveServingEngine
from repro.serve.metrics import RequestRecord, percentile
from repro.serve.workload import TenantSpec

__all__ = ["Detector", "WindowStats"]


def _round(x: float) -> float:
    return round(x, 6)


@dataclass(frozen=True)
class WindowStats:
    """Everything the planner may look at for one control epoch."""

    epoch: int
    start_s: float
    end_s: float
    #: arrivals processed in the window (admitted + shed)
    arrivals: int
    #: completions whose finish fell inside the window
    completed: int
    shed: int
    #: completions that met their deadline
    deadline_met: int
    queue_depth: int
    active_replicas: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: worst per-tenant p95 latency over that tenant's SLO (1.0 = at SLO);
    #: the planner's primary pressure signal
    slo_p95_frac: float
    shed_rate: float
    #: fleet busy chip-seconds over provisioned chip-seconds in the window
    utilization: float
    arrival_rate_rps: float
    #: per-network share of the window's arrivals-by-completion mix
    network_mix: Dict[str, float] = field(default_factory=dict)
    #: per-replica max observed/expected batch service ratio (1.0 = healthy)
    replica_service_ratio: Dict[int, float] = field(default_factory=dict)
    #: per-replica batches completing in the window (sample size for ratios)
    replica_batches: Dict[int, int] = field(default_factory=dict)

    @property
    def deadline_hit_rate(self) -> float:
        offered = self.completed + self.shed
        return self.deadline_met / offered if offered else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "start_ms": _round(self.start_s * 1e3),
            "end_ms": _round(self.end_s * 1e3),
            "arrivals": self.arrivals,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_met": self.deadline_met,
            "queue_depth": self.queue_depth,
            "active_replicas": self.active_replicas,
            "p50_ms": _round(self.p50_ms),
            "p95_ms": _round(self.p95_ms),
            "p99_ms": _round(self.p99_ms),
            "slo_p95_frac": _round(self.slo_p95_frac),
            "shed_rate": _round(self.shed_rate),
            "utilization": _round(self.utilization),
            "arrival_rate_rps": _round(self.arrival_rate_rps),
            "network_mix": {
                k: _round(v) for k, v in sorted(self.network_mix.items())
            },
            "replica_service_ratio": {
                str(rid): _round(v)
                for rid, v in sorted(self.replica_service_ratio.items())
            },
        }


class Detector:
    """Incrementally windows an :class:`AdaptiveServingEngine`'s metrics.

    The detector holds an index into the engine's append-only completion
    list plus cumulative shed/arrival snapshots, so each :meth:`observe`
    touches only the records produced since the previous epoch.  Records
    dispatched in this window but finishing in a later one are parked in a
    small pending list until their window closes.
    """

    def __init__(
        self,
        engine: AdaptiveServingEngine,
        tenants: Sequence[TenantSpec],
    ) -> None:
        self.engine = engine
        self.slo_ms = {t.name: t.slo_ms for t in tenants}
        self._ci = 0
        self._prev_end = 0.0
        self._prev_shed = 0
        self._prev_arrivals = 0
        self._epoch = 0
        #: dispatched records whose finish time lies beyond the last
        #: observed boundary, ordered by (finish_s, rid)
        self._inflight: List[RequestRecord] = []

    @classmethod
    def resume(
        cls,
        engine: AdaptiveServingEngine,
        tenants: Sequence[TenantSpec],
        boundary_s: float,
        epoch: int,
    ) -> "Detector":
        """Rebuild a detector mid-run after a control-plane crash.

        The engine's metrics are the ground truth a restarted loop still
        has: every record dispatched by ``boundary_s`` is in the completion
        list, and pre-crash windows consumed exactly the records finishing
        at or before the boundary.  Reconstructing ``(consumed index,
        in-flight list, cumulative snapshots)`` from that state is
        therefore *exact* — the resumed detector's future windows are
        bit-identical to an uncrashed detector's.
        """
        detector = cls(engine, tenants)
        completed = engine.metrics.completed
        detector._ci = len(completed)
        detector._inflight = sorted(
            (r for r in completed if r.finish_s > boundary_s),
            key=lambda r: (r.finish_s, r.rid),
        )
        detector._prev_end = boundary_s
        detector._prev_shed = engine.metrics.shed_total
        detector._prev_arrivals = engine.offered
        detector._epoch = epoch
        return detector

    def observe(self, t_end: float) -> WindowStats:
        """Reduce the window ``(prev_end, t_end]`` to one stats record."""
        if t_end <= self._prev_end and self._epoch:
            raise ConfigError(
                f"observe({t_end!r}) does not advance past {self._prev_end!r}"
            )
        engine = self.engine
        completed = engine.metrics.completed
        fresh = completed[self._ci :]
        self._ci = len(completed)
        self._inflight.extend(fresh)
        self._inflight.sort(key=lambda r: (r.finish_s, r.rid))
        cut = 0
        for record in self._inflight:
            if record.finish_s <= t_end:
                cut += 1
            else:
                break
        window = self._inflight[:cut]
        self._inflight = self._inflight[cut:]

        shed_total = engine.metrics.shed_total
        shed = shed_total - self._prev_shed
        self._prev_shed = shed_total
        arrivals = engine.offered - self._prev_arrivals
        self._prev_arrivals = engine.offered

        start_s = self._prev_end
        span = t_end - start_s
        latencies = [r.latency_s * 1e3 for r in window]
        met = sum(1 for r in window if r.met_deadline)

        # worst per-tenant p95 over that tenant's SLO
        slo_frac = 0.0
        by_tenant: Dict[str, List[float]] = {}
        for r in window:
            by_tenant.setdefault(r.tenant, []).append(r.latency_s * 1e3)
        for tenant, values in by_tenant.items():
            slo = self.slo_ms.get(tenant)
            if slo:
                slo_frac = max(slo_frac, percentile(values, 95) / slo)

        # per-replica health: max observed/expected service ratio over the
        # window's batches (one batch = one distinct (replica, start) pair)
        batches: Dict[Tuple[int, float], RequestRecord] = {}
        for r in window:
            batches.setdefault((r.replica, r.start_s), r)
        ratios: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for (rid, _), r in sorted(batches.items()):
            # expected cost under the replica's *own* coster: a degraded
            # replica replanned through Algorithm 2 reads healthy again,
            # so the ratio separates faults from load
            expected = engine.coster_for(rid).batch_seconds(
                r.network, r.batch_size
            )
            if expected > 0:
                ratio = r.service_s / expected
                ratios[rid] = max(ratios.get(rid, 0.0), ratio)
                counts[rid] = counts.get(rid, 0) + 1

        mix_counts: Dict[str, int] = {}
        for r in window:
            mix_counts[r.network] = mix_counts.get(r.network, 0) + 1
        total_mix = sum(mix_counts.values())

        busy = sum(engine.busy_overlap(start_s, t_end).values())
        provisioned = engine.provisioned_overlap(start_s, t_end)

        stats = WindowStats(
            epoch=self._epoch,
            start_s=start_s,
            end_s=t_end,
            arrivals=arrivals,
            completed=len(window),
            shed=shed,
            deadline_met=met,
            queue_depth=engine.queue_depth(),
            active_replicas=engine.n_active(),
            p50_ms=percentile(latencies, 50),
            p95_ms=percentile(latencies, 95),
            p99_ms=percentile(latencies, 99),
            slo_p95_frac=slo_frac,
            shed_rate=shed / arrivals if arrivals else 0.0,
            utilization=busy / provisioned if provisioned else 0.0,
            arrival_rate_rps=arrivals / span if span else 0.0,
            network_mix={
                k: v / total_mix for k, v in mix_counts.items()
            }
            if total_mix
            else {},
            replica_service_ratio=ratios,
            replica_batches=counts,
        )
        self._prev_end = t_end
        self._epoch += 1
        return stats
