"""The actuator: applies planner decisions to the live serving engine.

The actuator is the only component that mutates the
:class:`~repro.serve.engine.AdaptiveServingEngine`.  It translates each
abstract :class:`~repro.control.policy.Action` into concrete engine calls
at the epoch boundary — provisioning replicas, draining specific rids,
swapping the live :class:`~repro.serve.batcher.BatchPolicy` — and returns
an *applied* record per action (which rids were added/drained, whether the
action was clipped by fleet bounds) that the verifier turns into an
expectation to check.

Scale-down picks victims deterministically: the highest-rid active
replicas drain first (LIFO — the newest provisioned chip is the first
released), so reruns retire identical rids.  A drain/repair action is a
drain plus a one-for-one replacement add, keeping fleet capacity constant
through the repair.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import AdaptiveServingEngine
from repro.control.policy import Action

__all__ = ["Actuator", "AppliedAction"]


class AppliedAction:
    """One action's concrete effect on the engine."""

    def __init__(
        self,
        action: Action,
        added: Sequence[int] = (),
        drained: Sequence[int] = (),
        clipped: bool = False,
        note: str = "",
    ) -> None:
        self.action = action
        self.added = list(added)
        self.drained = list(drained)
        self.clipped = clipped
        self.note = note

    def to_dict(self) -> Dict[str, object]:
        out = self.action.to_dict()
        out["added"] = self.added
        out["drained"] = self.drained
        if self.clipped:
            out["clipped"] = True
        if self.note:
            out["note"] = self.note
        return out


class Actuator:
    """Applies a batch of actions to one engine at an epoch boundary."""

    def __init__(self, engine: AdaptiveServingEngine) -> None:
        self.engine = engine

    def apply(self, actions: Sequence[Action]) -> List[AppliedAction]:
        applied = []
        for action in actions:
            applied.append(self._apply_one(action))
        return applied

    def _drain_victims(self, count: int) -> List[int]:
        """Highest-rid active replicas first (deterministic LIFO)."""
        active = sorted((r.rid for r in self.engine.active_replicas()), reverse=True)
        return active[:count]

    def _apply_one(self, action: Action) -> AppliedAction:
        engine = self.engine
        if action.kind == "scale-up":
            if action.target is None:
                raise ConfigError("scale-up action needs a target")
            need = action.target - engine.n_active()
            added = [engine.add_replica() for _ in range(max(0, need))]
            return AppliedAction(action, added=added, clipped=need <= 0)
        if action.kind == "scale-down":
            if action.target is None:
                raise ConfigError("scale-down action needs a target")
            need = engine.n_active() - action.target
            drained: List[int] = []
            for rid in self._drain_victims(max(0, need)):
                if engine.n_active() <= 1:
                    break  # never strand queued work
                engine.drain_replica(rid, reason="scale-down")
                drained.append(rid)
            return AppliedAction(
                action, drained=drained, clipped=len(drained) < max(0, need)
            )
        if action.kind == "drain":
            if action.replica is None:
                raise ConfigError("drain action needs a replica")
            state = next(
                (r for r in engine.replicas if r.rid == action.replica), None
            )
            if state is None or not state.active:
                return AppliedAction(
                    action, clipped=True, note="replica already gone"
                )
            # one-for-one repair: provision the replacement first so the
            # drain never trips the last-active guard
            replacement = engine.add_replica()
            engine.drain_replica(action.replica, reason="unhealthy")
            return AppliedAction(
                action, added=[replacement], drained=[action.replica]
            )
        if action.kind == "retune":
            if action.max_batch is None or action.max_wait_ms is None:
                raise ConfigError("retune action needs max_batch and max_wait_ms")
            engine.set_batch_policy(
                BatchPolicy(
                    max_batch=action.max_batch, max_wait_ms=action.max_wait_ms
                )
            )
            return AppliedAction(action)
        raise ConfigError(f"unknown action kind {action.kind!r}")
