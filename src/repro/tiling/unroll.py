"""Data unrolling (im2col) — the paper's Equation 1 and Fig. 3.

Unrolling replicates every input pixel once per kernel window that covers
it, turning convolution into a dense matrix product.  It makes mapping
trivial but multiplies the footprint by

    T = ((X-k)/s + 1) * ((Y-k)/s + 1) * k * k / (X * Y)          (Eq. 1)

which for the bottom layers of AlexNet/GoogLeNet is 9x-18.9x (Fig. 3).
The transform itself (:func:`im2col`) is used by the functional simulator
to execute the intra-kernel scheme's numerics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, TensorShape, conv_output_hw

__all__ = ["UnrollStats", "unroll_factor", "unroll_stats", "im2col", "pad_input"]


@dataclass(frozen=True)
class UnrollStats:
    """Raw vs unrolled footprints for one conv layer (one input tensor)."""

    raw_elements: int
    unrolled_elements: int

    @property
    def factor(self) -> float:
        """Duplication factor T of Equation 1."""
        return self.unrolled_elements / self.raw_elements

    def raw_bits(self, word_bits: int = 16) -> int:
        return self.raw_elements * word_bits

    def unrolled_bits(self, word_bits: int = 16) -> int:
        return self.unrolled_elements * word_bits


def unroll_factor(x: int, y: int, k: int, s: int) -> float:
    """Equation 1: duplication factor for an ``x*y`` map, kernel ``k``, stride ``s``.

    The paper's formula assumes no padding (the unrolled matrix has one row
    per output pixel and ``k*k`` entries per row).
    """
    if k > x or k > y:
        raise ShapeError(f"kernel {k} larger than map {x}x{y}")
    ox = (x - k) // s + 1
    oy = (y - k) // s + 1
    return ox * oy * k * k / (x * y)


def unroll_stats(layer: ConvLayer, in_shape: TensorShape) -> UnrollStats:
    """Footprint statistics for unrolling ``layer``'s input (all ``Din`` maps).

    Accounts for padding: the unrolled tensor always has ``ox*oy`` rows of
    ``k*k`` pixels per input map.
    """
    out = layer.output_shape(in_shape)
    raw = in_shape.elements
    unrolled = out.height * out.width * layer.kernel * layer.kernel * in_shape.depth
    return UnrollStats(raw_elements=raw, unrolled_elements=unrolled)


def pad_input(data: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes of a (D, H, W) tensor."""
    if pad < 0:
        raise ShapeError("pad must be non-negative")
    if pad == 0:
        return data
    return np.pad(data, ((0, 0), (pad, pad), (pad, pad)))


def im2col(
    data: np.ndarray,
    kernel: int,
    stride: int,
    pad: int = 0,
    backend: "str | None" = None,
) -> np.ndarray:
    """Unroll a (D, H, W) tensor into a (oh*ow, D*k*k) matrix.

    Row ``r`` holds the receptive field of output pixel ``r`` (row-major over
    the output map), with the per-map ``k*k`` patches concatenated along the
    depth axis — the layout a software GEMM (Caffe-style) consumes.

    Both backends produce byte-identical matrices (unrolling is pure data
    movement); ``vector`` extracts every patch at once through a strided
    window view instead of one Python-level copy per output pixel.
    """
    if data.ndim != 3:
        raise ShapeError(f"expected (D, H, W) tensor, got shape {data.shape}")
    from repro.sim.backend import conv_window_view, resolve_backend, window_columns

    padded = pad_input(data, pad)
    d, h, w = padded.shape
    oh = conv_output_hw(h, kernel, stride, 0)
    ow = conv_output_hw(w, kernel, stride, 0)
    if resolve_backend(backend) == "vector":
        return window_columns(conv_window_view(padded, kernel, stride, oh, ow))
    rows = np.empty((oh * ow, d * kernel * kernel), dtype=padded.dtype)
    r = 0
    for oy in range(oh):
        iy = oy * stride
        for ox in range(ow):
            ix = ox * stride
            patch = padded[:, iy : iy + kernel, ix : ix + kernel]
            rows[r] = patch.reshape(-1)
            r += 1
    return rows
