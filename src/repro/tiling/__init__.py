"""Data tiling: unrolling (Eq. 1), kernel partitioning (Eq. 2), layouts, fit."""

from repro.tiling.fit import FitReport, WorkingSet, analyze_fit, working_set
from repro.tiling.layout import (
    Layout,
    from_layout,
    linear_address,
    reorder_moves,
    to_layout,
)
from repro.tiling.partition import (
    PartitionGeometry,
    pad_data_for_partition,
    padded_input_extent,
    partition_geometry,
    partition_weights,
)
from repro.tiling.unroll import (
    UnrollStats,
    im2col,
    pad_input,
    unroll_factor,
    unroll_stats,
)

__all__ = [
    "FitReport",
    "WorkingSet",
    "analyze_fit",
    "working_set",
    "Layout",
    "from_layout",
    "linear_address",
    "reorder_moves",
    "to_layout",
    "PartitionGeometry",
    "pad_data_for_partition",
    "padded_input_extent",
    "partition_geometry",
    "partition_weights",
    "UnrollStats",
    "im2col",
    "pad_input",
    "unroll_factor",
    "unroll_stats",
]
