"""Buffer-fit analysis and off-chip traffic estimation.

The paper's Table 3 accelerator has 2 MB input/output buffers and a 1 MB
weight buffer.  Most AlexNet/GoogLeNet/NiN layers fit; VGG's big bottom
layers need ~8 MB ("we have to exchange data frequently between on-chip
buffer and off-chip memory which is very time consuming") — that exchange is
why the adaptive scheme's VGG speedup is marginal (Fig. 8 discussion).

The model here charges:

* **compulsory traffic** — input + weights read once, output written once;
* **spill traffic** — re-reads caused by tiling:
  - if the weights overflow the weight buffer, the output maps are produced
    in ``weight_passes`` chunks and the input is re-streamed per chunk;
  - if the input or the output overflows its buffer, the layer is processed
    in spatial row strips (input strip and its output strip move together,
    so partial sums never round-trip off chip) and each strip boundary
    re-reads a ``k - s`` input row halo.

DMA cycles are ``traffic / dram_words_per_cycle``; with double buffering the
layer's wall-clock is ``max(compute, dma)``, so spill only hurts when it
makes the layer memory-bound — exactly VGG's situation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import LayerContext

__all__ = ["WorkingSet", "FitReport", "working_set", "analyze_fit"]


@dataclass(frozen=True)
class WorkingSet:
    """Per-layer on-chip word requirements."""

    input_words: int
    output_words: int
    weight_words: int

    @property
    def total_words(self) -> int:
        return self.input_words + self.output_words + self.weight_words


@dataclass(frozen=True)
class FitReport:
    """Result of fitting one conv layer onto the accelerator's buffers."""

    working_set: WorkingSet
    input_fits: bool
    output_fits: bool
    weight_fits: bool
    #: number of output-channel chunks forced by the weight buffer
    weight_passes: int
    #: number of input row strips forced by the input buffer
    input_strips: int
    compulsory_words: int
    spill_words: int
    dma_cycles: float

    @property
    def everything_fits(self) -> bool:
        return self.input_fits and self.output_fits and self.weight_fits

    @property
    def total_traffic_words(self) -> int:
        return self.compulsory_words + self.spill_words


def working_set(ctx: LayerContext) -> WorkingSet:
    """On-chip words needed to hold a conv layer's tensors whole."""
    layer = ctx.layer
    if not isinstance(layer, ConvLayer):
        raise ShapeError(f"{ctx.name}: fit analysis applies to conv layers")
    weights = layer.kernel * layer.kernel * (layer.in_maps // layer.groups) * layer.out_maps
    return WorkingSet(
        input_words=ctx.in_shape.elements,
        output_words=ctx.out_shape.elements,
        weight_words=weights,
    )


def analyze_fit(ctx: LayerContext, config: AcceleratorConfig) -> FitReport:
    """Fit ``ctx`` onto ``config``'s buffers and estimate off-chip traffic."""
    layer = ctx.layer
    ws = working_set(ctx)
    in_cap = config.input_buffer_words
    out_cap = config.output_buffer_words
    w_cap = config.weight_buffer_words

    input_fits = ws.input_words <= in_cap
    output_fits = ws.output_words <= out_cap
    weight_fits = ws.weight_words <= w_cap

    weight_passes = max(1, math.ceil(ws.weight_words / w_cap))
    # spatial strips: the input strip and its output strip move together, so
    # whichever buffer is tighter sets the strip count
    input_strips = max(
        1,
        math.ceil(ws.input_words / in_cap),
        math.ceil(ws.output_words / out_cap),
    )

    compulsory = ws.input_words + ws.weight_words + ws.output_words

    spill = 0
    # weights overflow: the input is streamed once per weight chunk
    if weight_passes > 1:
        spill += (weight_passes - 1) * ws.input_words
    # spatial strips: a (k - s)-row input halo is re-read at each boundary
    if input_strips > 1:
        halo_rows = max(0, layer.kernel - layer.stride)
        row_words = ctx.in_shape.width * ctx.in_shape.depth
        spill += (input_strips - 1) * halo_rows * row_words

    dma_cycles = (compulsory + spill) / config.dram_words_per_cycle
    return FitReport(
        working_set=ws,
        input_fits=input_fits,
        output_fits=output_fits,
        weight_fits=weight_fits,
        weight_passes=weight_passes,
        input_strips=input_strips,
        compulsory_words=compulsory,
        spill_words=spill,
        dma_cycles=dma_cycles,
    )
