"""Memory layouts: inter-order vs intra-order (Algorithm 2, lines 4-5).

The adaptive planner stores each layer's output in the order the *next*
layer's scheme wants to stream it, so no hardware layout-transformation unit
is needed:

* **inter-order** ``(X, Y, Din)`` — depth varies fastest: the ``Tin`` words an
  inter-kernel operation consumes (same pixel position, consecutive input
  maps) are contiguous.
* **intra-order** ``(Din, X, Y)`` — pixels of one map are contiguous: the
  words an intra-kernel / partitioned operation consumes (a window inside
  one map) are contiguous.

Numerically a tensor in intra-order is the familiar planar ``(D, H, W)``
array and inter-order is its ``(H, W, D)`` transpose.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers import TensorShape

__all__ = [
    "Layout",
    "to_layout",
    "from_layout",
    "linear_address",
    "reorder_moves",
]


class Layout(Enum):
    """Activation layout in external memory / on-chip buffer."""

    #: depth-fastest (X, Y, Din): feeds inter-kernel parallelism
    INTER = "inter"
    #: map-planar (Din, X, Y): feeds intra-kernel / partitioned parallelism
    INTRA = "intra"


def to_layout(planar: np.ndarray, layout: Layout) -> np.ndarray:
    """Convert a planar (D, H, W) tensor to the given layout's axis order."""
    if planar.ndim != 3:
        raise ShapeError(f"expected (D, H, W) tensor, got {planar.shape}")
    if layout is Layout.INTRA:
        return planar
    return np.ascontiguousarray(np.moveaxis(planar, 0, 2))  # (H, W, D)


def from_layout(stored: np.ndarray, layout: Layout) -> np.ndarray:
    """Convert a stored tensor back to planar (D, H, W)."""
    if stored.ndim != 3:
        raise ShapeError(f"expected rank-3 tensor, got {stored.shape}")
    if layout is Layout.INTRA:
        return stored
    return np.ascontiguousarray(np.moveaxis(stored, 2, 0))


def linear_address(
    shape: TensorShape, d: int, y: int, x: int, layout: Layout
) -> int:
    """Word address of element (map ``d``, row ``y``, col ``x``) in a layout.

    Used by alignment tests: consecutive inter-kernel fetches (varying ``d``)
    must be unit-stride in INTER layout, and consecutive intra-kernel fetches
    (varying ``x``) must be unit-stride in INTRA layout.
    """
    if not (0 <= d < shape.depth and 0 <= y < shape.height and 0 <= x < shape.width):
        raise ShapeError(
            f"index ({d},{y},{x}) out of bounds for {shape.as_tuple()}"
        )
    if layout is Layout.INTRA:
        return (d * shape.height + y) * shape.width + x
    return (y * shape.width + x) * shape.depth + d


def reorder_moves(shape: TensorShape, src: Layout, dst: Layout) -> int:
    """Element moves needed to convert between layouts (0 when equal).

    The adaptive planner charges this only when a layer's producer stored in
    the "wrong" order — which Algorithm 2 avoids by construction, so in
    adaptive plans this is always zero except at the network input.
    """
    if src is dst:
        return 0
    return shape.elements
