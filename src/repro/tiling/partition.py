"""Kernel partitioning — the paper's Equation 2, Fig. 5 and Algorithm 1.

A ``k x k`` kernel convolved at stride ``s < k`` overlaps its neighbouring
windows, which is what makes intra-kernel parallelism hard to align.  The
partitioning splits the kernel into ``g = ceil(k/s)`` pieces per side, each
of size ``ks = s``:

* the kernel is zero-padded to a ``(g*ks) x (g*ks)`` grid and cut into
  ``g*g`` sub-kernels of ``ks x ks`` (Fig. 5c);
* sub-kernel ``(i, j)`` scans the input starting at offset ``(i*ks, j*ks)``
  with stride ``s = ks`` — window size equals stride, so adjacent windows
  never overlap and the data for one window is contiguous in the buffer
  (Fig. 5b);
* each sub-kernel yields one partial output map; summing the ``g*g`` maps
  reproduces the original convolution exactly (Fig. 5d).

The zero padding inflates the multiplied-weight grid from ``k*k`` to
``(g*ks)^2`` entries, a modest compute overhead (e.g. 144/121 for the
11x11 / stride-4 AlexNet conv1) in exchange for perfectly aligned,
unit-stride buffer accesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ScheduleError, ShapeError

__all__ = [
    "PartitionGeometry",
    "partition_geometry",
    "partition_weights",
    "padded_input_extent",
    "pad_data_for_partition",
]


@dataclass(frozen=True)
class PartitionGeometry:
    """Derived quantities of Equation 2 for one (kernel, stride) pair."""

    kernel: int
    stride: int
    #: pieces per side: g = ceil(k / s)
    groups_per_side: int
    #: sub-kernel size: ks = s
    sub_kernel: int

    @property
    def pieces(self) -> int:
        """Total sub-kernels G = g * g."""
        return self.groups_per_side ** 2

    @property
    def padded_kernel(self) -> int:
        """Side of the zero-padded kernel grid (g * ks >= k)."""
        return self.groups_per_side * self.sub_kernel

    @property
    def pad_overhead(self) -> float:
        """Compute inflation from zero padding: (g*ks)^2 / k^2 >= 1."""
        return self.padded_kernel ** 2 / self.kernel ** 2

    @property
    def sub_window_elements(self) -> int:
        """Data words in one sub-kernel window (ks * ks)."""
        return self.sub_kernel ** 2


def partition_geometry(kernel: int, stride: int) -> PartitionGeometry:
    """Equation 2: ``g = ceil(k/s)``, ``ks = s``.

    Partitioning only makes sense when the stride is smaller than the
    kernel (otherwise windows already do not overlap); a degenerate request
    raises :class:`ScheduleError` so callers fall back to plain intra-kernel.
    """
    if kernel <= 0 or stride <= 0:
        raise ShapeError("kernel and stride must be positive")
    if stride >= kernel:
        raise ScheduleError(
            f"kernel-partitioning needs stride < kernel; got k={kernel}, s={stride}"
        )
    g = math.ceil(kernel / stride)
    return PartitionGeometry(
        kernel=kernel, stride=stride, groups_per_side=g, sub_kernel=stride
    )


def partition_weights(weights: np.ndarray, stride: int) -> np.ndarray:
    """Split a (..., k, k) weight tensor into (..., g*g, ks, ks) sub-kernels.

    Leading axes (e.g. Dout, Din) are preserved; the trailing two spatial
    axes are zero-padded to ``g*ks`` and cut into the Fig. 5(c) grid.  Piece
    ``G = i*g + j`` is the sub-kernel at grid position (row ``i``, col ``j``).
    """
    if weights.ndim < 2:
        raise ShapeError("weight tensor needs at least 2 (spatial) axes")
    k1, k2 = weights.shape[-2], weights.shape[-1]
    if k1 != k2:
        raise ShapeError(f"only square kernels supported, got {k1}x{k2}")
    geom = partition_geometry(k1, stride)
    pk, ks, g = geom.padded_kernel, geom.sub_kernel, geom.groups_per_side
    pad_width = [(0, 0)] * (weights.ndim - 2) + [(0, pk - k1), (0, pk - k2)]
    padded = np.pad(weights, pad_width)
    lead = weights.shape[:-2]
    # reshape to (..., g, ks, g, ks) then regroup the piece axes together
    blocked = padded.reshape(lead + (g, ks, g, ks))
    blocked = np.moveaxis(blocked, -2, -3)  # (..., g, g, ks, ks)
    return blocked.reshape(lead + (g * g, ks, ks))


def padded_input_extent(
    in_extent: int, kernel: int, stride: int, pad: int
) -> Tuple[int, int]:
    """Input extent after conv padding plus partition padding.

    Returns ``(out_extent, padded_extent)`` where ``padded_extent`` is large
    enough that every sub-kernel's scan (offset up to ``(g-1)*ks``, reach
    ``ks``) stays in bounds: ``(out-1)*s + g*ks``.
    """
    geom = partition_geometry(kernel, stride)
    base = in_extent + 2 * pad
    if kernel > base:
        raise ShapeError(f"kernel {kernel} larger than padded input {base}")
    out = (base - kernel) // stride + 1
    needed = (out - 1) * stride + geom.padded_kernel
    return out, max(base, needed)


def pad_data_for_partition(
    data: np.ndarray, kernel: int, stride: int, pad: int
) -> np.ndarray:
    """Zero-pad a (D, H, W) tensor for a partitioned scan (Fig. 5a).

    Applies the layer's own convolution padding symmetrically, then grows the
    bottom/right edge so the farthest sub-kernel offset stays in bounds.
    When no padding is needed at all (``pad == 0`` and the scan already fits)
    the input is returned unchanged — callers only read the result.
    """
    if data.ndim != 3:
        raise ShapeError(f"expected (D, H, W) tensor, got shape {data.shape}")
    _, h, w = data.shape
    _, ph = padded_input_extent(h, kernel, stride, pad)
    _, pw = padded_input_extent(w, kernel, stride, pad)
    if pad == 0 and ph == h and pw == w:
        return data
    padded = np.pad(
        data,
        (
            (0, 0),
            (pad, ph - h - 2 * pad + pad),
            (pad, pw - w - 2 * pad + pad),
        ),
    )
    return padded
