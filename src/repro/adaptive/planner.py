"""Whole-network planning: fixed policies and the adaptive policies.

A *policy* decides which scheme runs each conv layer:

* ``"inter"`` / ``"intra"`` / ``"partition"`` — the same scheme across all
  layers (Fig. 8's first three series).  ``partition`` degenerates to
  intra-kernel sliding-window on layers with ``s >= k`` (there is nothing to
  partition; the sub-kernel already equals the window).
* ``"adaptive-1"`` (adpa-1) — Algorithm 2 with the *original* inter-kernel.
* ``"adaptive-2"`` (adpa-2) — Algorithm 2 with the improved inter-kernel of
  Sec 4.2.2 (same cycles, far less buffer traffic).
* ``"ideal"`` — the 100%-utilization bound.
* ``"oracle"`` — exhaustive per-layer search (:mod:`repro.adaptive.search`).

Layout handoff (Algorithm 2 lines 4-5): the planner walks the conv layers in
order and asks each layer to store its output in the layout the *next*
layer's scheme streams from.  Only the raw network input may need a
conversion, charged as one extra DMA pass.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.adaptive.selector import SchemeChoice, layout_for_scheme, select_scheme
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError, ScheduleError
from repro.nn.network import LayerContext, Network
from repro.perf.cache import cached_schedule
from repro.perf.instrument import phase
from repro.sim.trace import NetworkRun
from repro.tiling.layout import Layout, reorder_moves

__all__ = ["plan_network", "plan_layer", "POLICY_NAMES", "choices_for_network"]

POLICY_NAMES = (
    "ideal",
    "inter",
    "intra",
    "partition",
    "adaptive-1",
    "adaptive-2",
    "oracle",
)

#: the raw image is delivered in planar (intra) order
_INPUT_LAYOUT = Layout.INTRA


def _fixed_chooser(scheme_name: str) -> Callable[[LayerContext, AcceleratorConfig], str]:
    def choose(ctx: LayerContext, config: AcceleratorConfig) -> str:
        if scheme_name == "partition":
            # degenerate layers (s >= k, e.g. 1x1 convs) cannot be
            # partitioned; the scheme falls back to plain intra-kernel
            geom_k = ctx.layer.kernel
            geom_s = ctx.layer.stride
            if geom_s >= geom_k:
                return "intra"
        return scheme_name

    return choose


def _adaptive_chooser(improved: bool) -> Callable[[LayerContext, AcceleratorConfig], str]:
    def choose(ctx: LayerContext, config: AcceleratorConfig) -> str:
        return select_scheme(ctx, config, improved_inter=improved).scheme

    return choose


def _oracle_chooser(ctx: LayerContext, config: AcceleratorConfig) -> str:
    # imported lazily to avoid an import cycle with search.py
    from repro.adaptive.search import best_scheme_name_for_layer

    return best_scheme_name_for_layer(ctx, config)


def _chooser(policy: str) -> Callable[[LayerContext, AcceleratorConfig], str]:
    if policy in ("ideal", "inter", "intra", "partition"):
        return _fixed_chooser(policy)
    if policy == "adaptive-1":
        return _adaptive_chooser(improved=False)
    if policy == "adaptive-2":
        return _adaptive_chooser(improved=True)
    if policy == "oracle":
        return _oracle_chooser
    raise ConfigError(f"unknown policy {policy!r}; choose from {POLICY_NAMES}")


def plan_layer(
    ctx: LayerContext, config: AcceleratorConfig, scheme_name: str
):
    """Schedule one layer under one scheme.

    Memoized through :mod:`repro.perf.cache`: layers sharing a geometry
    (VGG's repeated 3x3 stacks, replans of the same network) reuse the
    stored schedule instead of re-deriving the tiling.
    """
    return cached_schedule(scheme_name, ctx, config)


def choices_for_network(
    net: Network, config: AcceleratorConfig, improved_inter: bool = True
) -> List[SchemeChoice]:
    """Algorithm 2's verdict for every conv layer (reporting helper)."""
    return [
        select_scheme(ctx, config, improved_inter=improved_inter)
        for ctx in net.conv_contexts()
    ]


def plan_network(
    net: Network,
    config: AcceleratorConfig,
    policy: str,
    include_non_conv: bool = False,
) -> NetworkRun:
    """Schedule ``net`` under ``policy``.

    By default only the conv layers are planned (the paper's evaluation
    unit); ``include_non_conv=True`` also appends pooling/FC/LRN records
    from :mod:`repro.schemes.auxiliary` so the run covers the whole
    forward pass.  Returns a :class:`~repro.sim.trace.NetworkRun` with
    per-layer records and an input-reorder charge when the first layer's
    scheme streams a layout other than the planar order the image arrives
    in.
    """
    from repro.nn.layers import ConvLayer
    from repro.schemes.auxiliary import schedule_auxiliary

    choose = _chooser(policy)
    with phase("plan_network"):
        run = NetworkRun(network_name=net.name, policy=policy, config=config)
        first_conv_ctx: Optional[LayerContext] = None
        first_conv_result = None
        for ctx in net.contexts():
            if isinstance(ctx.layer, ConvLayer):
                name = choose(ctx, config)
                try:
                    result = plan_layer(ctx, config, name)
                except ScheduleError:
                    # a fixed policy hit a layer its scheme cannot map — fall
                    # back to intra-kernel, which is always legal
                    result = plan_layer(ctx, config, "intra")
                if first_conv_ctx is None:
                    first_conv_ctx = ctx
                    first_conv_result = result
                run.append(result)
            elif include_non_conv:
                run.append(schedule_auxiliary(ctx, config))
        if first_conv_result is not None:
            run.input_reorder_words = reorder_moves(
                first_conv_ctx.in_shape, _INPUT_LAYOUT, first_conv_result.input_layout
            )
        return run
