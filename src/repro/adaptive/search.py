"""Exhaustive per-layer scheme search — the oracle Algorithm 2 approximates.

The paper claims its rule-based selection "ensures the optimal performance";
this module makes that claim testable: for each layer it evaluates every
legal scheme and keeps the best (fewest wall-clock cycles; buffer accesses
break ties, since energy follows traffic).  Tests assert Algorithm 2 matches
the oracle's cycle count on the benchmark networks to within a small margin.

Beyond the paper, the search also supports energy and energy-delay-product
objectives ("this dynamic scheme can optimize performance and minimize
energy consuming simultaneously" — the EDP oracle quantifies how
simultaneous those two really are).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.arch.energy import EnergyModel
from repro.errors import ConfigError, ScheduleError
from repro.nn.network import LayerContext, Network
from repro.perf.cache import cached_schedule, config_key, layer_key, schedule_cache
from repro.perf.instrument import phase
from repro.perf.parallel import parallel_map
from repro.schemes.base import ScheduleResult

__all__ = [
    "SearchOutcome",
    "best_scheme_for_layer",
    "best_scheme_name_for_layer",
    "search_network",
    "layer_energy_pj",
    "OBJECTIVES",
]

#: supported search objectives
OBJECTIVES = ("cycles", "energy", "edp")


def layer_energy_pj(result: ScheduleResult, model: EnergyModel) -> float:
    """Total energy of one layer schedule (PE clocked over wall-clock,
    buffer accesses, DRAM), consistent with NetworkRun.energy()."""
    breakdown = model.breakdown(
        operations=int(round(result.total_cycles)),
        accesses=result.accesses,
        dram_words=result.dram_words,
        extra_adds=result.extra_adds,
    )
    return breakdown.total_pj

#: schemes the oracle considers (ideal is a bound, not a real mapping)
CANDIDATE_SCHEMES: Sequence[str] = ("inter", "inter-improved", "intra", "partition")


@dataclass(frozen=True)
class SearchOutcome:
    """Winner of the per-layer search, with all evaluated alternatives."""

    layer_name: str
    scheme: str
    result: ScheduleResult
    alternatives: tuple

    @property
    def cycles(self) -> float:
        return self.result.total_cycles


def best_scheme_for_layer(
    ctx: LayerContext,
    config: AcceleratorConfig,
    candidates: Sequence[str] = CANDIDATE_SCHEMES,
    objective: str = "cycles",
) -> SearchOutcome:
    """Evaluate every legal candidate on ``ctx``; return the winner.

    ``objective`` is one of ``"cycles"`` (fewest wall-clock cycles, buffer
    accesses break ties — the paper's notion of optimal), ``"energy"``
    (least total energy) or ``"edp"`` (energy-delay product).  Raises
    :class:`ScheduleError` only if *no* candidate is legal (cannot happen
    for conv layers since intra-kernel is always legal).
    """
    if objective not in OBJECTIVES:
        raise ConfigError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}"
        )
    evaluated: List[ScheduleResult] = []
    for name in candidates:
        try:
            evaluated.append(cached_schedule(name, ctx, config))
        except ScheduleError:
            continue
    if not evaluated:
        raise ScheduleError(f"{ctx.name}: no candidate scheme is legal")
    # every key ends on the scheme name so ties break identically no matter
    # how the candidate list was ordered (or which pool worker evaluated it)
    if objective == "cycles":
        key = lambda r: (r.total_cycles, r.buffer_accesses, r.scheme)
    else:
        model = EnergyModel(config)
        if objective == "energy":
            key = lambda r: (layer_energy_pj(r, model), r.total_cycles, r.scheme)
        else:
            key = lambda r: (
                layer_energy_pj(r, model) * r.total_cycles,
                r.total_cycles,
                r.scheme,
            )
    best = min(evaluated, key=key)
    return SearchOutcome(
        layer_name=ctx.name,
        scheme=best.scheme,
        result=best,
        alternatives=tuple(evaluated),
    )


#: memo of search winners' *names* for choosers that never look at the full
#: outcome (the oracle planning policy): geometry/config-keyed like the
#: schedule cache, honors its enable switch, and being a pure-function memo
#: it needs no invalidation — only an LRU bound.
_WINNER_MEMO: "OrderedDict[Tuple, str]" = OrderedDict()
_WINNER_MEMO_MAX = 4096


def best_scheme_name_for_layer(
    ctx: LayerContext,
    config: AcceleratorConfig,
    candidates: Sequence[str] = CANDIDATE_SCHEMES,
    objective: str = "cycles",
) -> str:
    """The oracle winner's scheme name, memoized.

    A replanned layer costs one dict probe instead of re-ranking every
    candidate; disabled together with the schedule cache so
    ``--no-plan-cache`` reproduces the fully uncached pipeline.
    """
    if not schedule_cache.enabled:
        return best_scheme_for_layer(ctx, config, candidates, objective).scheme
    key = (layer_key(ctx), config_key(config), tuple(candidates), objective)
    name = _WINNER_MEMO.get(key)
    if name is None:
        name = best_scheme_for_layer(ctx, config, candidates, objective).scheme
        _WINNER_MEMO[key] = name
        if len(_WINNER_MEMO) > _WINNER_MEMO_MAX:
            _WINNER_MEMO.popitem(last=False)
    return name


def _search_layer_task(
    payload: Tuple[LayerContext, AcceleratorConfig, Tuple[str, ...], str]
) -> SearchOutcome:
    """Picklable per-layer unit of work for the parallel oracle."""
    ctx, config, candidates, objective = payload
    return best_scheme_for_layer(ctx, config, candidates, objective=objective)


def search_network(
    net: Network,
    config: AcceleratorConfig,
    candidates: Sequence[str] = CANDIDATE_SCHEMES,
    objective: str = "cycles",
    jobs: Optional[int] = None,
) -> List[SearchOutcome]:
    """Run the per-layer oracle over every conv layer of ``net``.

    ``jobs`` fans the layers out over a process pool (``None`` defers to
    the ``--jobs`` default, 1 stays serial); result order and content are
    identical either way.
    """
    with phase("search_network"):
        payloads = [
            (ctx, config, tuple(candidates), objective)
            for ctx in net.conv_contexts()
        ]
        return parallel_map(_search_layer_task, payloads, jobs=jobs)
