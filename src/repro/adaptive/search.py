"""Exhaustive per-layer scheme search — the oracle Algorithm 2 approximates.

The paper claims its rule-based selection "ensures the optimal performance";
this module makes that claim testable: for each layer it evaluates every
legal scheme and keeps the best (fewest wall-clock cycles; buffer accesses
break ties, since energy follows traffic).  Tests assert Algorithm 2 matches
the oracle's cycle count on the benchmark networks to within a small margin.

Beyond the paper, the search also supports energy and energy-delay-product
objectives ("this dynamic scheme can optimize performance and minimize
energy consuming simultaneously" — the EDP oracle quantifies how
simultaneous those two really are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.config import AcceleratorConfig
from repro.arch.energy import EnergyModel
from repro.errors import ConfigError, ScheduleError
from repro.nn.network import LayerContext, Network
from repro.schemes import make_scheme
from repro.schemes.base import ScheduleResult

__all__ = [
    "SearchOutcome",
    "best_scheme_for_layer",
    "search_network",
    "layer_energy_pj",
    "OBJECTIVES",
]

#: supported search objectives
OBJECTIVES = ("cycles", "energy", "edp")


def layer_energy_pj(result: ScheduleResult, model: EnergyModel) -> float:
    """Total energy of one layer schedule (PE clocked over wall-clock,
    buffer accesses, DRAM), consistent with NetworkRun.energy()."""
    breakdown = model.breakdown(
        operations=int(round(result.total_cycles)),
        accesses=result.accesses,
        dram_words=result.dram_words,
        extra_adds=result.extra_adds,
    )
    return breakdown.total_pj

#: schemes the oracle considers (ideal is a bound, not a real mapping)
CANDIDATE_SCHEMES: Sequence[str] = ("inter", "inter-improved", "intra", "partition")


@dataclass(frozen=True)
class SearchOutcome:
    """Winner of the per-layer search, with all evaluated alternatives."""

    layer_name: str
    scheme: str
    result: ScheduleResult
    alternatives: tuple

    @property
    def cycles(self) -> float:
        return self.result.total_cycles


def best_scheme_for_layer(
    ctx: LayerContext,
    config: AcceleratorConfig,
    candidates: Sequence[str] = CANDIDATE_SCHEMES,
    objective: str = "cycles",
) -> SearchOutcome:
    """Evaluate every legal candidate on ``ctx``; return the winner.

    ``objective`` is one of ``"cycles"`` (fewest wall-clock cycles, buffer
    accesses break ties — the paper's notion of optimal), ``"energy"``
    (least total energy) or ``"edp"`` (energy-delay product).  Raises
    :class:`ScheduleError` only if *no* candidate is legal (cannot happen
    for conv layers since intra-kernel is always legal).
    """
    if objective not in OBJECTIVES:
        raise ConfigError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}"
        )
    evaluated: List[ScheduleResult] = []
    for name in candidates:
        try:
            evaluated.append(make_scheme(name).schedule(ctx, config))
        except ScheduleError:
            continue
    if not evaluated:
        raise ScheduleError(f"{ctx.name}: no candidate scheme is legal")
    if objective == "cycles":
        key = lambda r: (r.total_cycles, r.buffer_accesses)
    else:
        model = EnergyModel(config)
        if objective == "energy":
            key = lambda r: layer_energy_pj(r, model)
        else:
            key = lambda r: layer_energy_pj(r, model) * r.total_cycles
    best = min(evaluated, key=key)
    return SearchOutcome(
        layer_name=ctx.name,
        scheme=best.scheme,
        result=best,
        alternatives=tuple(evaluated),
    )


def search_network(
    net: Network,
    config: AcceleratorConfig,
    candidates: Sequence[str] = CANDIDATE_SCHEMES,
    objective: str = "cycles",
) -> List[SearchOutcome]:
    """Run the per-layer oracle over every conv layer of ``net``."""
    return [
        best_scheme_for_layer(ctx, config, candidates, objective=objective)
        for ctx in net.conv_contexts()
    ]
