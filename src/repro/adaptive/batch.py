"""Batched inference — amortizing weight traffic across images.

The paper evaluates single-image forward propagation, where batch-1 FC
layers are hopelessly DMA-bound (AlexNet's fc6 alone streams 37.7 M weight
words).  The classical fix — shared by DianNao-era accelerators and every
deployment stack since — is batching: keep a weight tile resident and run
``B`` images through it before fetching the next.

This module derives a batched plan from the single-image plan:

* compute, activation traffic and partial-sum traffic scale with ``B``;
* weight *DMA* happens once per batch (the weight working set is reused
  from the on-chip buffer for the other ``B - 1`` images);
* per-image wall-clock keeps the same compute/stream overlap rule.

The result quantifies the crossover: conv layers barely care (they were
compute-bound already), FC layers approach their compute bound as ``B``
grows — which is why ``throughput(B)`` saturates once the FC weight
streams are fully hidden.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from repro.arch.buffers import AccessCounter
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.perf.instrument import phase
from repro.schemes.base import ScheduleResult
from repro.sim.trace import NetworkRun

__all__ = ["BatchRun", "batch_layer", "plan_batch"]


def _validate_batch_size(batch_size: int) -> None:
    """Reject non-``int`` batch sizes loudly instead of scaling by them.

    ``bool`` is an ``int`` subclass and floats multiply silently, so both
    would otherwise produce a plausible-looking but meaningless plan.
    """
    if isinstance(batch_size, bool) or not isinstance(batch_size, int):
        raise ConfigError(
            f"batch size must be an int, got {batch_size!r} "
            f"({type(batch_size).__name__})"
        )
    if batch_size <= 0:
        raise ConfigError(f"batch size must be positive, got {batch_size!r}")


def batch_layer(result: ScheduleResult, batch_size: int) -> ScheduleResult:
    """Scale one layer's single-image schedule to a batch.

    Weight buffer fills (and their DRAM words) stay at the single-image
    amount; everything image-linked multiplies by ``batch_size``.
    """
    _validate_batch_size(batch_size)
    if batch_size == 1:
        return result
    b = batch_size
    weight_fills = result.accesses["weight"].stores
    accesses = {
        name: AccessCounter(counter.loads * b, counter.stores * b)
        for name, counter in result.accesses.items()
    }
    # weights are fetched from DRAM once per batch
    accesses["weight"] = AccessCounter(
        result.accesses["weight"].loads * b, weight_fills
    )
    dram_words = (result.dram_words - weight_fills) * b + weight_fills
    config = result.config
    return dataclasses.replace(
        result,
        operations=result.operations * b,
        useful_macs=result.useful_macs * b,
        extra_adds=result.extra_adds * b,
        accesses=accesses,
        dram_words=dram_words,
        dma_cycles=dram_words / config.dram_words_per_cycle,
        reshape_cycles=result.reshape_cycles * b,
        notes={**result.notes, "batch_size": b},
    )


@dataclass
class BatchRun:
    """A batched network run with throughput helpers."""

    run: NetworkRun
    batch_size: int

    @property
    def total_cycles(self) -> float:
        return self.run.total_cycles

    @property
    def cycles_per_image(self) -> float:
        return self.run.total_cycles / self.batch_size

    def images_per_second(self) -> float:
        seconds = self.run.config.cycles_to_seconds(self.run.total_cycles)
        return self.batch_size / seconds

    def latency_ms(self) -> float:
        """Wall-clock of the whole batch (the latency an image can see)."""
        return self.run.milliseconds()


def plan_batch(
    net: Network,
    config: AcceleratorConfig,
    policy: str = "adaptive-2",
    batch_size: int = 1,
    include_non_conv: bool = True,
) -> BatchRun:
    """Plan ``net`` for a batch of images.

    Defaults to including the non-conv layers, since FC amortization is
    the point of batching.  The underlying single-image plan goes through
    the schedule cache, so sizing a batch sweep (many batch sizes, one
    geometry set) schedules each layer only once.
    """
    from repro.adaptive.planner import plan_network

    _validate_batch_size(batch_size)
    with phase("plan_batch"):
        single = plan_network(net, config, policy, include_non_conv=include_non_conv)
        batched = NetworkRun(
            network_name=net.name,
            policy=f"{policy}@batch{batch_size}",
            config=config,
            input_reorder_words=single.input_reorder_words * batch_size,
        )
        layers: List[ScheduleResult] = [
            batch_layer(r, batch_size) for r in single.layers
        ]
        for layer in layers:
            batched.append(layer)
        return BatchRun(run=batched, batch_size=batch_size)
