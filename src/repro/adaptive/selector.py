"""Algorithm 2: per-layer scheme selection and layout decision.

The rule exploits the paper's observation that deep CNNs arrange their
layers along a gradient — bottom layers have big kernels and few input maps,
top layers have small kernels and many maps — so the three schemes are
complementary (Table 1):

1. ``k == s`` (and ``k != 1``): windows never overlap — plain intra-kernel
   (sliding window) gets full reuse with trivial alignment;
2. else if ``Din < Tin``: inter-kernel would idle most of the array —
   kernel-partitioning gives intra-like alignment at near-full utilization;
3. else: inter-kernel (the improved, weight-resident variant for adap-2).

Lines 4-5 of the algorithm pick each layer's *output* layout from the scheme
of the **next** layer, so consecutive layers hand tensors over in exactly the
order the consumer streams them — no layout-transformation hardware needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes import group_geometry
from repro.tiling.layout import Layout

__all__ = ["SchemeChoice", "select_scheme", "layout_for_scheme"]


@dataclass(frozen=True)
class SchemeChoice:
    """The selector's verdict for one layer."""

    layer_name: str
    scheme: str
    reason: str


def select_scheme(
    ctx: LayerContext,
    config: AcceleratorConfig,
    improved_inter: bool = True,
) -> SchemeChoice:
    """Apply Algorithm 2 to one conv layer.

    ``improved_inter`` distinguishes adap-2 (Sec 4.2.2 inter-kernel, the
    default) from adap-1 (original inter-kernel).
    """
    geom = group_geometry(ctx)
    inter_name = "inter-improved" if improved_inter else "inter"
    if geom.k == geom.s and geom.k != 1:
        return SchemeChoice(
            ctx.name,
            "intra",
            f"k == s == {geom.k}: sliding window aligns perfectly",
        )
    if geom.s < geom.k and geom.d < config.tin:
        return SchemeChoice(
            ctx.name,
            "partition",
            f"Din = {geom.d} < Tin = {config.tin}: inter-kernel would idle "
            f"{config.tin - geom.d}/{config.tin} of the array",
        )
    return SchemeChoice(
        ctx.name,
        inter_name,
        f"Din = {geom.d} >= Tin = {config.tin} (or 1x1 kernel): "
        "depth parallelism saturates the array",
    )


def layout_for_scheme(scheme_name: str) -> Layout:
    """The input layout a scheme streams from (Algorithm 2 lines 4-5)."""
    if scheme_name in ("inter", "inter-improved"):
        return Layout.INTER
    return Layout.INTRA
