"""Adaptive parallelization: Algorithm 2 selector, planner, oracle search."""

from repro.adaptive.planner import (
    POLICY_NAMES,
    choices_for_network,
    plan_layer,
    plan_network,
)
from repro.adaptive.batch import BatchRun, batch_layer, plan_batch
from repro.adaptive.search import (
    OBJECTIVES,
    SearchOutcome,
    best_scheme_for_layer,
    layer_energy_pj,
    search_network,
)
from repro.adaptive.selector import SchemeChoice, layout_for_scheme, select_scheme

__all__ = [
    "POLICY_NAMES",
    "choices_for_network",
    "plan_layer",
    "plan_network",
    "BatchRun",
    "batch_layer",
    "plan_batch",
    "OBJECTIVES",
    "layer_energy_pj",
    "SearchOutcome",
    "best_scheme_for_layer",
    "search_network",
    "SchemeChoice",
    "layout_for_scheme",
    "select_scheme",
]
