"""Macro ISA and the host compiler (network -> instruction stream)."""

from repro.isa.assembly import assemble, disassemble
from repro.isa.compiler import (
    compile_layer,
    compile_network,
    compile_run,
    split_evenly,
)
from repro.isa.instructions import Instruction, Opcode, Program
from repro.isa.validate import LintIssue, assert_valid, lint_program

__all__ = [
    "assemble",
    "disassemble",
    "compile_layer",
    "compile_network",
    "compile_run",
    "split_evenly",
    "Instruction",
    "Opcode",
    "Program",
    "LintIssue",
    "assert_valid",
    "lint_program",
]
