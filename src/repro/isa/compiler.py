"""Compiler: network + schedule -> macro instruction stream.

Mirrors the paper's host-side compiler.  For each conv layer the chosen
scheme's :class:`~repro.schemes.base.ScheduleResult` fixes the activity
totals; the compiler lowers them into per-pass macro instructions — one
scheduling pass per output chunk (``ceil(Dout/Tout)``), which is the
granularity at which real control would sequence DMA, buffer streaming and
computation.  Counts are distributed across passes so the program's totals
equal the schedule's totals *exactly* (the machine/analytical cross-check
test depends on this).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.arch.config import AcceleratorConfig
from repro.errors import CompileError
from repro.isa.instructions import Instruction, Opcode, Program
from repro.nn.network import Network
from repro.schemes.base import ScheduleResult

__all__ = ["compile_layer", "compile_network", "compile_run", "split_evenly"]


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` non-negative integers summing exactly.

    The first ``total % parts`` parts get one extra unit.
    """
    if parts <= 0:
        raise CompileError("parts must be positive")
    if total < 0:
        raise CompileError("total must be non-negative")
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def _emit_pass(
    program: Program,
    opcode: Opcode,
    amounts: List[int],
    index: int,
    comment: str = "",
) -> None:
    amount = amounts[index]
    if amount:
        program.emit(Instruction(opcode, words=amount, comment=comment))


def compile_layer(
    result: ScheduleResult, config: AcceleratorConfig, passes: Optional[int] = None
) -> Program:
    """Lower one layer's schedule into a macro program.

    ``passes`` defaults to the number of output chunks the PE array needs
    for the layer (at least 1); every activity total is spread across the
    passes and a SYNC closes the layer.
    """
    if passes is None:
        # one pass per ~64k array operations, capped for program compactness
        passes = max(1, min(64, math.ceil(result.operations / 65536)))
    if passes <= 0:
        raise CompileError("passes must be positive")

    program = Program(
        name=f"{result.layer_name}:{result.scheme}",
        meta={
            "layer": result.layer_name,
            "scheme": result.scheme,
            "config": config.name,
        },
    )

    acc = result.accesses
    # DMA decomposition: input fills and weight fills are recorded as buffer
    # stores by the schemes; whatever remains of the off-chip traffic is the
    # output drain
    out_drain = result.dram_words - acc["input"].stores - acc["weight"].stores

    ops_split = split_evenly(result.operations, passes)
    # MACs must respect each pass's peak (ops * Tin * Tout): fill greedily
    macs_split = []
    remaining = result.useful_macs
    for ops in ops_split:
        take = min(remaining, ops * config.multipliers)
        macs_split.append(take)
        remaining -= take
    if remaining:
        raise CompileError(
            f"{result.layer_name}: {remaining} MACs exceed the array peak "
            f"for {result.operations} operations"
        )
    in_fill_split = split_evenly(acc["input"].stores, passes)
    in_read_split = split_evenly(acc["input"].loads, passes)
    w_fill_split = split_evenly(acc["weight"].stores, passes)
    w_read_split = split_evenly(acc["weight"].loads, passes)
    bias_split = split_evenly(acc["bias"].loads, passes)
    # the output drain is executed as DMA_STORE_OUTPUT (which reads the
    # output buffer), so it is removed from the explicit BUF_READ_OUTPUT
    # stream to avoid double counting
    out_read_split = split_evenly(max(0, acc["output"].loads - max(0, out_drain)), passes)
    out_write_split = split_evenly(acc["output"].stores, passes)
    adds_split = split_evenly(result.extra_adds, passes)
    reshape_split = split_evenly(int(round(result.reshape_cycles)), passes)
    drain_split = split_evenly(max(0, out_drain), passes)

    for p in range(passes):
        tag = f"pass {p + 1}/{passes}"
        if reshape_split[p]:
            program.emit(
                Instruction(Opcode.HOST_RESHAPE, words=reshape_split[p], comment=tag)
            )
        _emit_pass(program, Opcode.DMA_LOAD_INPUT, in_fill_split, p, tag)
        _emit_pass(program, Opcode.DMA_LOAD_WEIGHT, w_fill_split, p, tag)
        _emit_pass(program, Opcode.BUF_READ_INPUT, in_read_split, p, tag)
        _emit_pass(program, Opcode.BUF_READ_WEIGHT, w_read_split, p, tag)
        _emit_pass(program, Opcode.BUF_READ_BIAS, bias_split, p, tag)
        if ops_split[p] or macs_split[p]:
            program.emit(
                Instruction(
                    Opcode.COMPUTE,
                    operations=ops_split[p],
                    macs=macs_split[p],
                    comment=tag,
                )
            )
        _emit_pass(program, Opcode.BUF_READ_OUTPUT, out_read_split, p, tag)
        if adds_split[p]:
            program.emit(
                Instruction(Opcode.ACCUMULATE, operations=adds_split[p], comment=tag)
            )
        _emit_pass(program, Opcode.BUF_WRITE_OUTPUT, out_write_split, p, tag)
        _emit_pass(program, Opcode.DMA_STORE_OUTPUT, drain_split, p, tag)
    program.emit(Instruction(Opcode.SYNC, comment=f"end {result.layer_name}"))
    return program


def compile_run(run, config: AcceleratorConfig) -> Program:
    """Lower an existing :class:`~repro.sim.trace.NetworkRun` to a program.

    Works for any run — plain, oracle-planned, or batched — so the machine
    can cross-check every planner variant.
    """
    program = Program(
        name=f"{run.network_name}:{run.policy}",
        meta={
            "network": run.network_name,
            "policy": run.policy,
            "config": config.name,
        },
    )
    if run.input_reorder_words:
        reorder_cycles = math.ceil(
            run.input_reorder_words / config.dram_words_per_cycle
        )
        program.emit(
            Instruction(
                Opcode.HOST_RESHAPE,
                words=reorder_cycles,
                comment="input layout conversion",
            )
        )
        program.emit(Instruction(Opcode.SYNC, comment="reorder barrier"))
    for result in run.layers:
        program.extend(compile_layer(result, config))
    return program


def compile_network(
    net: Network,
    config: AcceleratorConfig,
    policy: str = "adaptive-2",
) -> Program:
    """Plan the network under ``policy`` and lower every layer.

    Returns one concatenated program; its machine execution reproduces the
    planner's :class:`~repro.sim.trace.NetworkRun` totals.
    """
    # imported here: the planner imports sim.trace, whose package pulls in
    # the machine and this module — a cycle at import time
    from repro.adaptive.planner import plan_network

    return compile_run(plan_network(net, config, policy), config)
