"""Macro instruction set of the accelerator's control unit.

The paper's toolchain has "a compiler, executed on host platform, that
automatically translates network specification ... into a code segment,
which can be mapped, scheduled and executed on the accelerator".  This is
that code segment: a linear stream of *macro* instructions, each describing
one bulk action (a DMA burst, a buffer transfer, a run of PE operations),
with word/operation counts as operands.

Macro granularity keeps programs compact (a few instructions per scheduling
pass instead of one per array cycle) while remaining fully executable: the
:mod:`repro.sim.machine` interpreter reproduces exactly the cycle and
access totals of the analytical schedules, and tests assert that agreement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import CompileError

__all__ = ["Opcode", "Instruction", "Program"]


class Opcode(enum.Enum):
    """Macro operations understood by the control unit."""

    #: DMA burst: external memory -> input buffer (words)
    DMA_LOAD_INPUT = "dma_load_input"
    #: DMA burst: external memory -> weight buffer (words)
    DMA_LOAD_WEIGHT = "dma_load_weight"
    #: DMA burst: external memory -> bias buffer (words)
    DMA_LOAD_BIAS = "dma_load_bias"
    #: DMA burst: output buffer -> external memory (words)
    DMA_STORE_OUTPUT = "dma_store_output"
    #: host-side reshape stream feeding the DMA (operand = host-stream
    #: cycles; unrolling realization and layout conversion only)
    HOST_RESHAPE = "host_reshape"
    #: stream words from the input buffer into the PE array
    BUF_READ_INPUT = "buf_read_input"
    #: stream words from the weight buffer into the PE array
    BUF_READ_WEIGHT = "buf_read_weight"
    #: read bias words
    BUF_READ_BIAS = "buf_read_bias"
    #: read partial sums back for accumulation
    BUF_READ_OUTPUT = "buf_read_output"
    #: write results / partial sums to the output buffer
    BUF_WRITE_OUTPUT = "buf_write_output"
    #: run the PE array for `operations` cycles performing `macs` useful MACs
    COMPUTE = "compute"
    #: add-and-store accumulation adder ops (Sec 4.2.2 adder group)
    ACCUMULATE = "accumulate"
    #: barrier: all in-flight activity completes (end of a layer)
    SYNC = "sync"


#: opcodes whose operand is a word count on a specific buffer
_BUFFER_OPS = {
    Opcode.BUF_READ_INPUT: ("input", "loads"),
    Opcode.BUF_READ_WEIGHT: ("weight", "loads"),
    Opcode.BUF_READ_BIAS: ("bias", "loads"),
    Opcode.BUF_READ_OUTPUT: ("output", "loads"),
    Opcode.BUF_WRITE_OUTPUT: ("output", "stores"),
}

#: DMA opcodes that also *fill* an on-chip buffer (buffer stores)
_DMA_FILL_OPS = {
    Opcode.DMA_LOAD_INPUT: "input",
    Opcode.DMA_LOAD_WEIGHT: "weight",
    Opcode.DMA_LOAD_BIAS: "bias",
}


@dataclass(frozen=True)
class Instruction:
    """One macro instruction.

    ``words`` is the word count for transfer opcodes; ``operations`` and
    ``macs`` apply to :attr:`Opcode.COMPUTE` (array cycles and useful MACs),
    and ``operations`` to :attr:`Opcode.ACCUMULATE` (adder ops).
    """

    opcode: Opcode
    words: int = 0
    operations: int = 0
    macs: int = 0
    comment: str = ""

    def __post_init__(self) -> None:
        if self.words < 0 or self.operations < 0 or self.macs < 0:
            raise CompileError(f"negative operand in {self}")
        if self.opcode is Opcode.COMPUTE and self.operations == 0 and self.macs:
            raise CompileError("COMPUTE with MACs but zero operations")

    @property
    def buffer_target(self) -> Optional[str]:
        """Buffer touched by a BUF_* opcode (None otherwise)."""
        entry = _BUFFER_OPS.get(self.opcode)
        return entry[0] if entry else None

    @property
    def buffer_kind(self) -> Optional[str]:
        """``"loads"`` / ``"stores"`` for BUF_* opcodes."""
        entry = _BUFFER_OPS.get(self.opcode)
        return entry[1] if entry else None

    @property
    def dma_fill_target(self) -> Optional[str]:
        """Buffer a DMA load fills (None for non-fill opcodes)."""
        return _DMA_FILL_OPS.get(self.opcode)

    @property
    def is_dma(self) -> bool:
        return self.opcode in (
            Opcode.DMA_LOAD_INPUT,
            Opcode.DMA_LOAD_WEIGHT,
            Opcode.DMA_LOAD_BIAS,
            Opcode.DMA_STORE_OUTPUT,
        )


@dataclass
class Program:
    """A compiled instruction stream for one layer (or a whole network)."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    #: free-form metadata (scheme name, layer name, config name ...)
    meta: Dict[str, str] = field(default_factory=dict)

    def emit(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, other: "Program") -> None:
        """Append another program's instructions (network concatenation)."""
        self.instructions.extend(other.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def count(self, opcode: Opcode) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for i in self.instructions if i.opcode is opcode)

    def total_words(self, opcode: Opcode) -> int:
        """Sum of ``words`` across instructions of one opcode."""
        return sum(i.words for i in self.instructions if i.opcode is opcode)

    def listing(self, limit: int = 50) -> str:
        """Human-readable assembly-style listing (truncated)."""
        lines = [f"; program {self.name}  meta={self.meta}"]
        for idx, inst in enumerate(self.instructions[:limit]):
            operand = []
            if inst.words:
                operand.append(f"words={inst.words}")
            if inst.operations:
                operand.append(f"ops={inst.operations}")
            if inst.macs:
                operand.append(f"macs={inst.macs}")
            suffix = f"  ; {inst.comment}" if inst.comment else ""
            lines.append(
                f"{idx:6d}  {inst.opcode.value:<18s} {' '.join(operand)}{suffix}"
            )
        if len(self.instructions) > limit:
            lines.append(f"...    ({len(self.instructions) - limit} more)")
        return "\n".join(lines)
