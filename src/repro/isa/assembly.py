"""Textual assembly for macro programs: dump and re-load instruction streams.

A compiled program is an artifact worth persisting — for diffing two
compiler versions, inspecting a schedule offline, or replaying a stream on
the machine without re-planning.  The format is line-oriented:

    ; program alexnet:adaptive-2
    .meta network alexnet
    .meta policy adaptive-2
    dma_load_input     words=154587
    compute            ops=490050 macs=105415200
    buf_write_output   words=7840800
    sync

Comments (``;``) and blank lines are ignored.  ``assemble(disassemble(p))``
is an exact round trip.
"""

from __future__ import annotations

from typing import List

from repro.errors import CompileError
from repro.isa.instructions import Instruction, Opcode, Program

__all__ = ["disassemble", "assemble"]

_BY_VALUE = {op.value: op for op in Opcode}


def disassemble(program: Program) -> str:
    """Render a program as assembly text."""
    lines: List[str] = [f"; program {program.name}"]
    for key, value in sorted(program.meta.items()):
        lines.append(f".meta {key} {value}")
    for inst in program:
        fields = []
        if inst.words:
            fields.append(f"words={inst.words}")
        if inst.operations:
            fields.append(f"ops={inst.operations}")
        if inst.macs:
            fields.append(f"macs={inst.macs}")
        suffix = f" ; {inst.comment}" if inst.comment else ""
        lines.append(
            f"{inst.opcode.value:<18s} {' '.join(fields)}{suffix}".rstrip()
        )
    return "\n".join(lines) + "\n"


def assemble(text: str, name: str = "assembled") -> Program:
    """Parse assembly text back into a Program.

    Raises :class:`CompileError` on unknown opcodes or malformed operands.
    """
    program = Program(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            continue
        comment = ""
        if ";" in line:
            line, comment = line.split(";", 1)
            line, comment = line.strip(), comment.strip()
            if not line:
                continue
        if line.startswith(".meta"):
            parts = line.split(maxsplit=2)
            if len(parts) < 3:
                raise CompileError(f"line {lineno}: malformed .meta directive")
            program.meta[parts[1]] = parts[2]
            continue
        tokens = line.split()
        opcode = _BY_VALUE.get(tokens[0])
        if opcode is None:
            raise CompileError(f"line {lineno}: unknown opcode {tokens[0]!r}")
        operands = {"words": 0, "operations": 0, "macs": 0}
        alias = {"words": "words", "ops": "operations", "macs": "macs"}
        for token in tokens[1:]:
            if "=" not in token:
                raise CompileError(f"line {lineno}: malformed operand {token!r}")
            key, _, value = token.partition("=")
            if key not in alias:
                raise CompileError(f"line {lineno}: unknown operand {key!r}")
            try:
                operands[alias[key]] = int(value)
            except ValueError:
                raise CompileError(
                    f"line {lineno}: non-integer operand {token!r}"
                ) from None
        program.emit(
            Instruction(
                opcode,
                words=operands["words"],
                operations=operands["operations"],
                macs=operands["macs"],
                comment=comment,
            )
        )
    return program
