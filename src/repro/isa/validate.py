"""Static validation (linting) of macro instruction programs.

The machine raises at runtime when a program is physically impossible; the
linter catches the same classes of problems — plus structural ones the
machine tolerates — *before* execution, the way the paper's compiler would
refuse to emit an unschedulable stream.

Checks:

* every COMPUTE respects the array peak (``macs <= ops * Tin * Tout``);
* non-negative operands (enforced by Instruction, re-checked defensively);
* the program is SYNC-terminated (an open region means a lost barrier);
* buffer working sets: the largest single DMA fill must fit the target
  buffer (a burst bigger than the SRAM cannot be double-buffered away);
* the output drained to DRAM never exceeds what was written to the output
  buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.arch.config import AcceleratorConfig
from repro.isa.instructions import Opcode, Program

__all__ = ["LintIssue", "lint_program", "assert_valid"]


@dataclass(frozen=True)
class LintIssue:
    """One problem found in a program."""

    index: int  # instruction index, -1 for whole-program issues
    severity: str  # "error" | "warning"
    message: str


@dataclass
class _Totals:
    output_written: int = 0
    output_drained: int = 0


def lint_program(program: Program, config: AcceleratorConfig) -> List[LintIssue]:
    """Return all issues found in ``program`` (empty = clean)."""
    issues: List[LintIssue] = []
    totals = _Totals()
    buffer_caps = {
        "input": config.input_buffer_words,
        "weight": config.weight_buffer_words,
        "bias": config.bias_buffer_bytes // config.word_bytes,
    }

    for idx, inst in enumerate(program):
        if inst.opcode is Opcode.COMPUTE:
            peak = inst.operations * config.multipliers
            if inst.macs > peak:
                issues.append(
                    LintIssue(
                        idx,
                        "error",
                        f"COMPUTE claims {inst.macs} MACs in "
                        f"{inst.operations} ops (peak {peak})",
                    )
                )
        fill = inst.dma_fill_target
        if fill is not None and inst.words > buffer_caps[fill]:
            issues.append(
                LintIssue(
                    idx,
                    "warning",
                    f"single {fill}-buffer fill of {inst.words} words "
                    f"exceeds its capacity {buffer_caps[fill]} "
                    "(must be split across passes)",
                )
            )
        if inst.opcode is Opcode.BUF_WRITE_OUTPUT:
            totals.output_written += inst.words
        if inst.opcode is Opcode.DMA_STORE_OUTPUT:
            totals.output_drained += inst.words

    if totals.output_drained > totals.output_written:
        issues.append(
            LintIssue(
                -1,
                "error",
                f"drains {totals.output_drained} output words but only "
                f"{totals.output_written} were written",
            )
        )
    if len(program) and program.instructions[-1].opcode is not Opcode.SYNC:
        issues.append(
            LintIssue(-1, "warning", "program does not end with SYNC")
        )
    return issues


def assert_valid(program: Program, config: AcceleratorConfig) -> None:
    """Raise ``AssertionError`` listing any *errors* (warnings pass)."""
    errors = [i for i in lint_program(program, config) if i.severity == "error"]
    if errors:
        listing = "; ".join(f"[{i.index}] {i.message}" for i in errors)
        raise AssertionError(f"invalid program {program.name!r}: {listing}")
