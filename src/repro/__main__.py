"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report
    Regenerate every table and figure of the paper's evaluation section
    and print them (the text form of Figs. 3/7/8/9/10 and Tables 4/5).
plan NETWORK [--config 16-16] [--policy adaptive-2]
    Plan one network and print the per-layer schedule.
select NETWORK [--config 16-16] [--json]
    Print Algorithm 2's per-layer scheme choices with reasons.
serve [--mix alexnet:2,vgg:1] [--rate 100] [--duration 10] ...
    Simulate a multi-tenant serving tier with dynamic batching and
    SLO accounting (see ``docs/serving.md``).
autoscale [--base-rate 6] [--peak-rate 42] [--days 3] [--compare] ...
    Drive the serving fleet with the closed-loop autoscaler over a
    multi-day diurnal workload with flash crowds; ``--compare`` adds
    the static mean-/peak-provisioned baselines (see
    ``docs/autoscaling.md``).
shard NETWORK [--chips 4] [--strategy pipeline|data-parallel] ...
    Partition a network across multiple accelerator chips with an
    inter-chip link model (see ``docs/sharding.md``).
chaos [SCENARIO ...] [--seed 1] [--json PATH] [--control]
    Run fault-injection scenarios — replica crashes, fail-slow windows,
    link flaps, PE masks, silent-data-corruption windows — against the
    serving tier and report availability, goodput under fault, MTTR and
    latency ratios (see ``docs/resilience.md``).  Exits non-zero when a
    scenario's declared invariant is violated.  ``--control`` switches to
    the chaos-under-autoscaling suite: the same faults land while the
    self-healing control loop is steering, plus faults in the control
    plane itself (see ``docs/chaos_control.md``).
tenancy {partition|fleet} [--tenants ...] [--rate 470] ...
    Carve one chip into co-resident tenant partitions and race the
    result against time-multiplexing the whole chip, or compare
    heterogeneous fleet compositions at equal cost (see
    ``docs/tenancy.md``).
capacity [--tenants ...] [--rate 300] [--slo-target 0.95] ...
    What-if capacity planning: search a deterministic deployment grid
    (geometries x fleet sizes x replication/sharding/partitioning x
    batching) against a traffic forecast, per-tenant SLOs, a chip-level
    fault model and ABFT on/off; prune with analytic capacity bounds,
    simulate the survivors, and rank by cost per million within-SLO
    requests (see ``docs/capacity.md``).  The schedule cache persists
    to ``.repro-plan-cache`` by default (``--no-persist-cache`` to
    disable).
integrity [--seed 0] [--flips 4] [--smoke] [--json PATH]
    Run the ABFT bit-flip injection sweep: detection / false-positive /
    correction rates per buffer site and scheme path, plus the costed
    checksum overhead per layer (see ``docs/integrity.md``).  Exits
    non-zero when detection < 99%, any false positive fires, or
    recovery is not bit-identical.
networks
    List the benchmark networks and their Table 2 characteristics.

Every command also accepts the planning-performance flags (see
``docs/performance.md``): ``--jobs N`` fans design-space work out over N
worker processes (-1 = all CPUs), ``--no-plan-cache`` disables the schedule
cache, ``--backend {loop,vector}`` picks the functional-simulator execution
(``vector`` is the default fast path; ``loop`` is the bit-exactness
oracle), and ``--perf-report`` prints phase timings and cache statistics
after the command finishes.
"""

from __future__ import annotations

import argparse
import sys

from repro.adaptive import choices_for_network, plan_network
from repro.adaptive.planner import POLICY_NAMES
from repro.arch.config import named_config as _named_config
from repro.arch.presets import PRESETS


def named_config(name: str):
    """CLI config resolver: a preset name or a 'Tin-Tout' string."""
    if name in PRESETS:
        return PRESETS[name]
    return _named_config(name)
from repro.nn.zoo import NETWORK_BUILDERS, build


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import (
        fig3_unrolling,
        fig7_conv1,
        fig8_whole_network,
        fig9_zhang_comparison,
        fig10_buffer_traffic,
        render_fig3,
        render_fig7,
        render_fig8,
        render_fig9,
        render_fig10,
        render_headline,
        render_table1,
        render_table4,
        render_table5,
        headline_numbers,
        table1_scheme_comparison,
        table4_cpu_comparison,
        table5_pe_energy,
        write_csv,
    )

    datasets = {
        "fig3": fig3_unrolling(),
        "fig7": fig7_conv1(),
        "fig8": fig8_whole_network(),
        "fig9": fig9_zhang_comparison(),
        "table4": table4_cpu_comparison(),
        "table5": table5_pe_energy(),
        "fig10": fig10_buffer_traffic(),
    }
    artifacts = [
        render_table1(table1_scheme_comparison()),
        render_fig3(datasets["fig3"]),
        render_fig7(datasets["fig7"]),
        render_fig8(datasets["fig8"]),
        render_fig9(datasets["fig9"]),
        render_table4(datasets["table4"]),
        render_table5(datasets["table5"]),
        render_fig10(datasets["fig10"]),
        render_headline(headline_numbers()),
    ]
    print(("\n\n" + "=" * 72 + "\n\n").join(artifacts))
    if args.csv_dir:
        import os

        os.makedirs(args.csv_dir, exist_ok=True)
        for name, rows in datasets.items():
            write_csv(rows, os.path.join(args.csv_dir, f"{name}.csv"))
        print(f"\nCSV artifacts written to {args.csv_dir}/")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.layerwise import render_layerwise

    net = build(args.network)
    config = named_config(args.config)
    run = plan_network(
        net, config, args.policy, include_non_conv=args.full
    )
    print(f"{net.name} on {config.name} under policy {args.policy!r}:")
    print(render_layerwise(run, top=args.top))
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(run, top=args.top))
    print(
        f"\ntotal: {run.total_cycles:,.0f} cycles = {run.milliseconds():.3f} ms, "
        f"utilization {run.utilization:.1%}, "
        f"buffer traffic {run.buffer_accesses:,} words, "
        f"DRAM {run.dram_words:,} words"
    )
    energy = run.energy()
    print(
        f"energy: PE {energy.pe_pj / 1e6:.2f} uJ, buffers "
        f"{energy.buffer_pj / 1e6:.2f} uJ, DRAM {energy.dram_pj / 1e6:.2f} uJ"
    )
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    net = build(args.network)
    config = named_config(args.config)
    choices = choices_for_network(net, config)
    if args.json:
        import json

        payload = {
            "network": net.name,
            "config": config.name,
            "choices": [
                {"layer": c.layer_name, "scheme": c.scheme, "reason": c.reason}
                for c in choices
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for choice in choices:
        print(f"{choice.layer_name:<26s} -> {choice.scheme:<15s} {choice.reason}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.serve import (
        BatchPolicy,
        QueuePolicy,
        ServingEngine,
        bursty_arrivals,
        parse_mix,
        poisson_arrivals,
        render_summary,
        trace_arrivals,
    )

    config = named_config(args.config)
    tenants = parse_mix(args.mix, slo_ms=args.slo_ms)
    if args.arrival == "poisson":
        requests = poisson_arrivals(args.rate, args.duration, tenants, seed=args.seed)
    elif args.arrival == "bursty":
        requests = bursty_arrivals(
            args.rate,
            args.duration,
            tenants,
            seed=args.seed,
            burst_factor=args.burst_factor,
            burst_fraction=args.burst_fraction,
            period_s=args.burst_period,
        )
    else:  # trace
        if not args.trace:
            raise ConfigError("--arrival trace requires --trace FILE")
        requests = trace_arrivals(
            args.trace, tenants, seed=args.seed, duration_s=args.duration
        )
    engine = ServingEngine(
        config,
        batch_policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        ),
        queue_policy=QueuePolicy(
            max_depth=args.queue_depth,
            order=args.queue_order,
            max_age_s=args.max_age_ms / 1e3 if args.max_age_ms else None,
            shed_expired=args.shed_expired,
        ),
        replicas=args.replicas,
        routing=args.routing,
        plan_policy=args.policy,
    )
    report = engine.run(
        requests,
        args.duration,
        extra_meta={
            "arrival": args.arrival,
            "mix": args.mix,
            "rate_rps": args.rate,
            "seed": args.seed,
            "slo_ms": args.slo_ms,
        },
    )
    if args.json == "-":
        print(report.to_json(), end="")
        return 0
    print(render_summary(report.summary))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"\nmetrics JSON written to {args.json}")
    return 0


def cmd_autoscale(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.serve import (
        BatchCoster,
        BatchPolicy,
        QueuePolicy,
        diurnal_arrivals,
        parse_mix,
        render_summary,
    )
    from repro.control import (
        AutoscalePolicy,
        ControlLoop,
        VerifierPolicy,
        run_static,
        static_fleet_sizes,
    )
    from repro.serve.metrics import to_json

    config = named_config(args.config)
    tenants = parse_mix(args.mix, slo_ms=args.slo_ms)
    duration = args.days * args.day_s
    flash = []
    for spec in args.flash:
        try:
            start, dur, factor = (float(x) for x in spec.split(":"))
        except ValueError:
            raise ConfigError(
                f"bad --flash {spec!r}; expected START:DURATION:FACTOR"
            ) from None
        flash.append((start, dur, factor))
    requests = diurnal_arrivals(
        args.base_rate,
        args.peak_rate,
        args.days,
        tenants,
        seed=args.seed,
        day_s=args.day_s,
        flash_crowds=flash,
        flash_per_day=args.flash_per_day,
        flash_factor=args.flash_factor,
        churn=args.churn,
    )
    coster = BatchCoster(config, policy=args.policy)
    autoscale = AutoscalePolicy(
        epoch_s=args.epoch_s,
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        high_band=args.high_band,
        low_band=args.low_band,
        cooldown_epochs=args.cooldown,
        headroom=args.headroom,
        retune=not args.no_retune,
    )
    loop = ControlLoop(
        config,
        tenants,
        autoscale=autoscale,
        verifier=VerifierPolicy(),
        batch_policy=BatchPolicy(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        ),
        queue_policy=QueuePolicy(max_depth=args.queue_depth),
        replicas=args.replicas,
        plan_policy=args.policy,
        coster=coster,
    )
    meta = {
        "arrival": "diurnal",
        "mix": args.mix,
        "base_rate_rps": args.base_rate,
        "peak_rate_rps": args.peak_rate,
        "days": args.days,
        "day_s": args.day_s,
        "seed": args.seed,
        "slo_ms": args.slo_ms,
    }
    report = loop.run(requests, duration, extra_meta=meta)
    payload = dict(report.summary)

    if args.compare:
        mean_rate = len(requests) / duration
        peak_inst = args.peak_rate * max(
            [args.flash_factor if args.flash_per_day else 1.0]
            + [f for _, _, f in flash]
        )
        mean_n, peak_n = static_fleet_sizes(
            coster, tenants, mean_rate, peak_inst, args.max_batch
        )
        baselines = {}
        for name, n in (("static_mean", mean_n), ("static_peak", peak_n)):
            static_report, chip = run_static(
                config,
                requests,
                duration,
                n,
                batch_policy=BatchPolicy(
                    max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
                ),
                queue_policy=QueuePolicy(max_depth=args.queue_depth),
                plan_policy=args.policy,
                coster=coster,
            )
            baselines[name] = {
                "replicas": n,
                "deadline_hit_rate": static_report.summary["deadline_hit_rate"],
                "shed": static_report.summary["shed"],
                "chip_seconds": round(chip, 6),
            }
        payload["baselines"] = baselines

    if args.json == "-":
        print(to_json(payload), end="")
        return 0
    print(render_summary(report.summary))
    control = report.summary["control"]
    print()
    print("autoscaler:")
    print(f"  epochs               {control['n_epochs']}")
    actions = ", ".join(
        f"{k}={v}" for k, v in control["actions_by_kind"].items()
    ) or "none"
    print(f"  actions              {actions}")
    verdicts = ", ".join(
        f"{k}={v}" for k, v in control["verdicts_by_status"].items()
    ) or "none"
    print(f"  verdicts             {verdicts}")
    print(f"  oscillation freezes  {len(control['freezes'])}")
    fleet = report.summary["fleet"]
    print(
        f"  fleet                peak {fleet['peak_replicas']}, "
        f"final {fleet['final_replicas']}, "
        f"{fleet['chip_seconds']:.1f} chip-seconds"
    )
    if args.compare:
        print()
        print("vs static provisioning:")
        for name, stats in payload["baselines"].items():
            print(
                f"  {name:<12s} {stats['replicas']:>2d} replicas  "
                f"hit {stats['deadline_hit_rate']:.4f}  "
                f"shed {stats['shed']:>5d}  "
                f"{stats['chip_seconds']:.1f} chip-seconds"
            )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(to_json(payload))
        print(f"\nmetrics JSON written to {args.json}")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    from repro.cluster import (
        LinkSpec,
        plan_data_parallel,
        plan_pipeline,
        rollup,
        to_json,
    )

    net = build(args.network)
    config = named_config(args.config)
    link = LinkSpec(
        bandwidth_gbs=args.link_gbs, latency_s=args.link_latency_us / 1e6
    )
    if args.strategy == "pipeline":
        plan = plan_pipeline(
            net,
            config,
            args.chips,
            link=link,
            policy=args.policy,
            strategy=args.partition,
        )
    else:
        plan = plan_data_parallel(
            net,
            config,
            args.chips,
            link=link,
            batch_size=args.batch,
            policy=args.policy,
        )
    summary = rollup(plan)
    if args.json == "-":
        print(to_json(summary), end="")
        return 0
    print(
        f"{net.name} across {args.chips} x {config.name} chips, "
        f"{args.strategy}"
        + (f" ({args.partition} balancer)" if args.strategy == "pipeline" else "")
        + f", {link.describe()}"
    )
    print()
    if args.strategy == "pipeline":
        from repro.analysis.report import format_table

        rows = []
        for s in plan.stages:
            span = (
                s.layer_names[0]
                if len(s.layer_names) == 1
                else f"{s.layer_names[0]}..{s.layer_names[-1]}"
            )
            rows.append(
                [
                    str(s.chip),
                    f"{span} ({len(s.layer_names)})",
                    f"{s.compute_s * 1e3:.3f}",
                    f"{s.send_s * 1e3:.3f}",
                    f"{plan.utilization(s.chip):.1%}",
                    f"{plan.link_occupancy(s.chip):.1%}",
                ]
            )
        print(
            format_table(
                ["chip", "layers", "compute ms", "send ms", "util", "link"], rows
            )
        )
        print(
            f"\nbottleneck {plan.bottleneck_s * 1e3:.3f} ms -> "
            f"{plan.throughput_ips:.1f} img/s steady state; "
            f"fill {plan.fill_latency_s * 1e3:.3f} ms, "
            f"drain {plan.drain_latency_s * 1e3:.3f} ms"
        )
        if args.partition == "dp":
            even = plan_pipeline(
                net,
                config,
                args.chips,
                link=link,
                policy=args.policy,
                strategy="even",
            )
            ratio = even.bottleneck_s / plan.bottleneck_s
            print(
                f"even-split baseline bottleneck {even.bottleneck_s * 1e3:.3f} ms "
                f"(dp balancer is {ratio:.2f}x better)"
            )
    else:
        from repro.analysis.report import format_table

        rows = [
            [
                str(s.chip),
                str(s.batch),
                f"{s.compute_s * 1e3:.3f}",
                f"{plan.utilization(s.chip):.1%}",
            ]
            for s in plan.shards
        ]
        print(format_table(["chip", "batch", "compute ms", "util"], rows))
        print(
            f"\nstep {plan.step_s * 1e3:.3f} ms "
            f"(scatter {plan.scatter_s * 1e3:.3f}, gather {plan.gather_s * 1e3:.3f}) "
            f"-> {plan.throughput_ips:.1f} img/s, "
            f"speedup {plan.speedup:.2f}x vs 1 chip "
            f"(efficiency {plan.efficiency:.1%}), "
            f"link busy {plan.link_occupancy:.1%}"
        )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(to_json(summary))
        print(f"\nsharding JSON written to {args.json}")
    return 0


def cmd_chaos_control(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.control.chaos_scenarios import (
        CONTROL_SCENARIO_NAMES,
        build_control_scenario,
        run_control_scenario,
        rollup_to_json,
    )

    if args.list:
        for name in CONTROL_SCENARIO_NAMES:
            scenario = build_control_scenario(name, seed=args.seed)
            print(f"{name:24s} {scenario.description}")
        return 0
    names = args.scenarios or list(CONTROL_SCENARIO_NAMES)
    config = named_config(args.config)
    rollups = {}
    for name in names:
        scenario = build_control_scenario(name, seed=args.seed)
        rollups[name] = run_control_scenario(scenario, config)
    violations = [
        (name, inv)
        for name in names
        for inv, ok in rollups[name]["invariants"].items()
        if not ok
    ]
    payload = rollups[names[0]] if len(names) == 1 else {
        "seed": args.seed,
        "config": config.name,
        "scenarios": rollups,
    }
    if args.json == "-":
        print(rollup_to_json(payload), end="")
        return 1 if violations else 0
    rows = []
    for name in names:
        r = rollups[name]
        att = r["attainment"]
        rec = r["recovery"]
        mttr = f"{rec['mttr_ms']:.0f}" if rec["mttr_ms"] is not None else "-"
        inv = r["invariants"]
        rows.append(
            [
                name,
                f"{att['healing']:.4f}",
                f"{att['nonhealing']:.4f}",
                f"{att['frozen_faulted']:.4f}",
                f"{att['frozen_healthy']:.4f}",
                mttr,
                f"{sum(inv.values())}/{len(inv)}",
            ]
        )
    print(f"chaos --control seed {args.seed} on {config.name}")
    print()
    print(
        format_table(
            [
                "scenario",
                "healing",
                "nonheal",
                "frozen",
                "healthy",
                "mttr ms",
                "invariants",
            ],
            rows,
        )
    )
    for name in names:
        detail = rollups[name]["healing_detail"]
        notes = []
        if detail["restarts"]:
            notes.append(f"{len(detail['restarts'])} journal restart(s)")
        if detail["safe_mode_intervals"]:
            spans = ", ".join(
                f"[{i['entered_epoch']}, {i['exited_epoch']}]"
                for i in detail["safe_mode_intervals"]
            )
            notes.append(f"safe mode {spans}")
        if detail["telemetry_flags"]:
            notes.append(f"{detail['telemetry_flags']} telemetry flag(s)")
        if detail["placements"]:
            chips = ", ".join(p["chip"] for p in detail["placements"])
            notes.append(f"replacement(s) placed on {chips}")
        if notes:
            print(f"\n{name}: " + "; ".join(notes))
    for name, inv in violations:
        print(f"\nINVARIANT VIOLATED: {name}: {inv}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(rollup_to_json(payload))
        print(f"\nchaos JSON written to {args.json}")
    return 1 if violations else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.resilience import (
        SCENARIO_NAMES,
        build_scenario,
        rollup_to_json,
        run_scenario,
    )

    if args.control:
        return cmd_chaos_control(args)
    if args.list:
        for name in SCENARIO_NAMES:
            scenario = build_scenario(name, seed=args.seed)
            print(f"{name:14s} {scenario.description}")
        return 0
    names = args.scenarios or list(SCENARIO_NAMES)
    config = named_config(args.config)
    rollups = {}
    for name in names:
        scenario = build_scenario(name, seed=args.seed)
        rollups[name] = run_scenario(scenario, config)
    violations = [
        (name, inv)
        for name in names
        for inv, ok in rollups[name]["invariants"].items()
        if not ok
    ]
    payload = rollups[names[0]] if len(names) == 1 else {
        "seed": args.seed,
        "config": config.name,
        "scenarios": rollups,
    }
    if args.json == "-":
        print(rollup_to_json(payload), end="")
        return 1 if violations else 0
    rows = []
    for name in names:
        r = rollups[name]
        rec = r["recovery"]
        mttr = f"{rec['mttr_ms']:.0f}" if rec["mttr_ms"] is not None else "-"
        rows.append(
            [
                name,
                f"{r['availability']:.4f}",
                f"{r['goodput_ratio']:.3f}",
                f"{r['latency_ratio']['p95']:.2f}x",
                f"{r['latency_ratio']['p99']:.2f}x",
                mttr,
                str(r["failover"]["retries"]),
                str(r["faulted"]["failed"]),
            ]
        )
    print(f"chaos seed {args.seed} on {config.name}")
    print()
    print(
        format_table(
            [
                "scenario",
                "avail",
                "goodput",
                "p95",
                "p99",
                "mttr ms",
                "retries",
                "failed",
            ],
            rows,
        )
    )
    for name in names:
        degrade = rollups[name]["degrade"]
        if degrade:
            for network, d in sorted(degrade.items()):
                flips = ", ".join(
                    f"{f['layer']} {f['healthy']}->{f['degraded']}"
                    for f in d["scheme_flips"]
                ) or "none"
                print(
                    f"\n{name}: {network} degraded "
                    f"{d['healthy_pe'][0]}x{d['healthy_pe'][1]} -> "
                    f"{d['degraded_pe'][0]}x{d['degraded_pe'][1]}, "
                    f"slowdown {d['slowdown']:.2f}x, flips: {flips}"
                )
        repair = rollups[name]["repair"]
        if repair:
            print(
                f"\n{name}: lost chip(s) {repair['lost_chips']} of "
                f"{repair['healthy_chips']}, rebalanced to "
                f"{len(repair['surviving_chips'])} chips at "
                f"{repair['throughput_ratio']:.1%} throughput, "
                f"{len(repair['moved_layers'])} layers moved "
                f"({repair['rebalance_ms']:.2f} ms of weight traffic)"
            )
        integrity = rollups[name]["integrity"]
        if integrity:
            drained = integrity["drained_replicas"]
            print(
                f"\n{name}: {integrity['corrupted_batches']} corrupted "
                f"batches, {integrity['detected']} detected / "
                f"{integrity['corrected']} corrected / "
                f"{integrity['escaped_batches']} escaped, drained "
                f"{drained if drained else 'none'}"
            )
    for name, inv in violations:
        print(f"\nINVARIANT VIOLATED: {name}: {inv}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(rollup_to_json(payload))
        print(f"\nchaos JSON written to {args.json}")
    return 1 if violations else 0


def cmd_tenancy(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.errors import ConfigError
    from repro.serve import BatchPolicy, QueuePolicy
    from repro.serve.workload import parse_tenant_mix
    from repro.tenancy import (
        PartitionSpec,
        compare_fleets,
        compare_partitioned,
        even_partitions,
        parse_fleet,
        rollup_to_json,
    )

    tenants = parse_tenant_mix(args.tenants, slo_ms=args.slo_ms)
    batch_policy = BatchPolicy(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
    )
    queue_policy = QueuePolicy(max_depth=args.queue_depth)

    if args.mode == "partition":
        config = named_config(args.config)
        if args.partitions:
            specs = []
            for entry in args.partitions.split(","):
                entry = entry.strip()
                if not entry:
                    continue
                name, sep, dims = entry.partition(":")
                try:
                    tin_s, tout_s = dims.split("x")
                    specs.append(
                        PartitionSpec(
                            name=name, tin=int(tin_s), tout=int(tout_s)
                        )
                    )
                except ValueError:
                    raise ConfigError(
                        f"bad partition entry {entry!r}; expected "
                        "'name:TINxTOUT'"
                    ) from None
        else:
            specs = even_partitions(config, args.split)
        rollup = compare_partitioned(
            config,
            specs,
            tenants,
            args.rate,
            args.duration,
            seed=args.seed,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            plan_policy=args.policy,
        )
        if args.json == "-":
            print(rollup_to_json(rollup), end="")
            return 0
        head = rollup["headline"]
        p95 = head["worst_tenant_p95_ms"]
        print(
            f"{config.name} carved into "
            + ", ".join(
                f"{s.name}={s.tin}x{s.tout}" for s in specs
            )
            + f" vs time-multiplexed whole chip, {args.rate:g} req/s "
            f"x {args.duration:g} s (seed {args.seed})"
        )
        print()
        rows = []
        for side in ("partitioned", "timemux"):
            s = rollup[side]
            rows.append(
                [
                    side,
                    str(s["offered"]),
                    str(s["shed"]),
                    f"{s['goodput_rps']:.1f}",
                    f"{p95[side]:.1f}",
                    f"{s['deadline_hit_rate']:.1%}",
                ]
            )
        print(
            format_table(
                ["deployment", "offered", "shed", "goodput/s",
                 "worst-tenant p95 ms", "hit rate"],
                rows,
            )
        )
        verdict = "wins" if head["partitioned_wins"] else "loses"
        print(
            f"\npartitioned co-residency {verdict} on worst-tenant p95 "
            f"({head['p95_ratio']:.2f}x the time-multiplexed tail)"
        )
    else:  # fleet
        if not args.fleet:
            raise ConfigError(
                "tenancy fleet mode needs at least one --fleet "
                "'name=class:Tin-Tout:count,...'"
            )
        fleets = []
        for entry in args.fleet:
            name, sep, spec = entry.partition("=")
            if not sep or not name or not spec:
                raise ConfigError(
                    f"bad --fleet {entry!r}; expected "
                    "'name=class:Tin-Tout[:count],...'"
                )
            fleets.append(parse_fleet(spec, name=name))
        rollup = compare_fleets(
            fleets,
            tenants,
            args.rate,
            args.duration,
            seed=args.seed,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            plan_policy=args.policy,
        )
        if args.json == "-":
            print(rollup_to_json(rollup), end="")
            return 0
        head = rollup["headline"]
        print(
            f"fleet comparison at {args.rate:g} req/s x {args.duration:g} s "
            f"(seed {args.seed})"
        )
        print()
        rows = []
        for name in head["ranking"]:
            s = rollup["fleets"][name]
            rows.append(
                [
                    name,
                    f"{s['fleet']['total_weight']:g}",
                    str(s["offered"]),
                    str(s["shed"]),
                    f"{s['goodput_rps']:.1f}",
                    f"{head['worst_tenant_p95_ms'][name]:.1f}",
                    f"{s['deadline_hit_rate']:.1%}",
                ]
            )
        print(
            format_table(
                ["fleet", "weight", "offered", "shed", "goodput/s",
                 "worst-tenant p95 ms", "hit rate"],
                rows,
            )
        )
        print(f"\nwinner: {head['winner']}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(rollup_to_json(rollup))
        print(f"\ntenancy JSON written to {args.json}")
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    import sys as _sys

    from repro.capacity import (
        CandidateGrid,
        FaultModel,
        ForecastSpec,
        plan_capacity,
        render_report,
        report_to_json,
    )

    def _ints(spec: str):
        return tuple(int(v) for v in spec.split(",") if v.strip())

    def _strs(spec: str):
        return tuple(v.strip() for v in spec.split(",") if v.strip())

    grid = CandidateGrid(
        geometries=_strs(args.geometries),
        chip_counts=_ints(args.chips),
        strategies=_strs(args.strategies),
        groups=_ints(args.groups),
        splits=_ints(args.splits),
        max_batches=_ints(args.max_batches),
        link_gbs=args.link_gbs,
    )
    forecast = ForecastSpec.parse(
        args.tenants,
        rate=args.rate,
        duration_s=args.duration,
        kind=args.forecast,
        peak_rate=args.peak_rate if args.forecast == "diurnal" else 0.0,
        day_s=args.day_s,
        slo_ms=args.slo_ms,
        seed=args.seed,
    )
    fault_model = None
    if args.crashes or args.slowdowns or args.sdc_windows:
        fault_model = FaultModel(
            seed=args.fault_seed,
            crashes=args.crashes,
            slowdowns=args.slowdowns,
            sdc_windows=args.sdc_windows,
        )

    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"  simulated {done}/{total} candidates", file=_sys.stderr)

    report = plan_capacity(
        grid,
        forecast,
        slo_target=args.slo_target,
        fault_model=fault_model,
        abft=args.abft,
        plan_policy=args.policy,
        prune=not args.no_prune,
        persist_cache=not args.no_persist_cache,
        cache_dir=args.cache_dir or None,
        progress=progress,
    )
    if args.json == "-":
        print(report_to_json(report), end="")
        return 0
    print(render_report(report, top=args.top))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report_to_json(report))
        print(f"\ncapacity JSON written to {args.json}")
    return 0


def cmd_integrity(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.integrity import run_sweep, sweep_to_json
    from repro.resilience.faults import BITFLIP_SITES

    config = named_config(args.config)
    rollup = run_sweep(
        seed=args.seed,
        flips_per_site=args.flips,
        smoke=args.smoke,
        config=config,
    )
    head = rollup["headline"]
    ok = (
        head["false_positives"] == 0
        and head["detection_rate"] >= 0.99
        and head["recovery_bit_identical"]
    )
    if args.json == "-":
        print(sweep_to_json(rollup), end="")
        return 0 if ok else 1
    rows = []
    for site in BITFLIP_SITES:
        t = rollup["sites"][site]
        rows.append(
            [
                site,
                str(t["injections"]),
                str(t["corrupted"]),
                str(t["detected"]),
                str(t["corrected"]),
                str(t["escaped"]),
                str(t["masked"]),
                str(t["skipped"]),
            ]
        )
    print(
        f"integrity sweep seed {rollup['seed']} on {rollup['config']}"
        + (" (smoke)" if rollup["smoke"] else "")
    )
    print()
    print(
        format_table(
            [
                "site",
                "injected",
                "corrupted",
                "detected",
                "corrected",
                "escaped",
                "masked",
                "skipped",
            ],
            rows,
        )
    )
    ratio = head["mean_latency_ratio"]
    print(
        f"\ndetection {head['detection_rate']:.1%} of {head['corrupted']} "
        f"corruptions, {head['false_positives']} false positives in "
        f"{head['clean_runs']} clean runs, recovery bit-identical: "
        f"{head['recovery_bit_identical']}"
        + (f", modeled checksum overhead {ratio:.3f}x" if ratio else "")
    )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(sweep_to_json(rollup))
        print(f"\nintegrity JSON written to {args.json}")
    if not ok:
        print("\nINTEGRITY GUARD FAILED ACCEPTANCE THRESHOLDS")
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.quantization import quantization_report, render_quantization
    from repro.analysis.reuse import render_reuse, reuse_table
    from repro.nn.zoo import sequential_cnn

    net = build(args.network)
    config = named_config(args.config)

    print("Reuse factors for the first conv layer under each scheme:\n")
    print(render_reuse(reuse_table(net.conv1(), config)))

    if args.quantization:
        # quantization runs a numerical forward pass; do it on a scaled
        # stand-in with the same first-layer geometry to stay fast
        c1 = net.conv1().layer
        probe = sequential_cnn(
            f"{net.name}-probe",
            (c1.in_maps, 4 * c1.kernel + c1.stride, 4 * c1.kernel + c1.stride),
            f"C{min(c1.out_maps, 16)}k{c1.kernel}s{c1.stride}p{c1.pad} R C10k1",
        )
        print()
        print(render_quantization(quantization_report(probe)))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.isa.compiler import compile_network
    from repro.isa.validate import lint_program
    from repro.sim.machine import Machine

    net = build(args.network)
    config = named_config(args.config)
    program = compile_network(net, config, args.policy)
    issues = lint_program(program, config)
    errors = [i for i in issues if i.severity == "error"]
    print(
        f"compiled {len(program)} macro instructions; lint: "
        f"{len(errors)} errors, {len(issues) - len(errors)} warnings"
    )
    if errors:
        for issue in errors:
            print(f"  [error] {issue.message}")
        return 1
    result = Machine(config).execute(program)
    print(
        f"machine: {result.total_cycles:,.0f} cycles "
        f"({result.milliseconds():.3f} ms) over {len(result.regions)} "
        f"regions, utilization {result.utilization:.1%}, "
        f"{result.buffer_accesses:,} buffer words, "
        f"{result.dram_words:,} DRAM words"
    )
    energy = result.energy()
    print(
        f"energy: PE {energy.pe_pj / 1e6:.2f} uJ, buffers "
        f"{energy.buffer_pj / 1e6:.2f} uJ, DRAM {energy.dram_pj / 1e6:.2f} uJ"
    )
    if args.asm:
        from repro.isa.assembly import disassemble

        with open(args.asm, "w") as handle:
            handle.write(disassemble(program))
        print(f"assembly written to {args.asm}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import render_comparison

    net = build(args.network)
    config = named_config(args.config)
    run_a = plan_network(net, config, args.policy_a)
    run_b = plan_network(net, config, args.policy_b)
    print(render_comparison(run_a, run_b))
    return 0


def cmd_networks(args: argparse.Namespace) -> int:
    if args.detail:
        from repro.nn.stats import render_network_stats

        print(render_network_stats(build(args.detail), top=args.top))
        return 0
    for name in NETWORK_BUILDERS:
        s = build(name).summary()
        c1 = s.conv1
        print(
            f"{s.name:<10s} conv1=({c1.in_maps},{c1.kernel},{c1.stride},"
            f"{c1.out_maps})  #conv={s.conv_layers:<3d} "
            f"kernels={','.join(map(str, s.kernel_sizes)):<10s} "
            f"MACs={s.total_macs:.3e}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="C-Brain (DAC'16) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # planning-performance flags shared by every subcommand
    perf_opts = argparse.ArgumentParser(add_help=False)
    perf_opts.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan design-space work out over N processes (-1 = all CPUs)",
    )
    perf_opts.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="disable the per-layer schedule cache",
    )
    perf_opts.add_argument(
        "--backend",
        default=None,
        choices=["loop", "vector"],
        help="functional-simulator backend (default: vector, or "
        "$REPRO_SIM_BACKEND; 'loop' is the bit-exactness oracle)",
    )
    perf_opts.add_argument(
        "--perf-report",
        action="store_true",
        help="print phase timings and cache statistics when done",
    )

    p_report = sub.add_parser(
        "report", help="regenerate all tables and figures", parents=[perf_opts]
    )
    p_report.add_argument(
        "--csv-dir",
        default="",
        help="also write each dataset as CSV into this directory",
    )

    p_plan = sub.add_parser("plan", help="plan one network", parents=[perf_opts])
    p_plan.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_plan.add_argument("--config", default="16-16")
    p_plan.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_plan.add_argument(
        "--full",
        action="store_true",
        help="include pooling/FC/LRN layers, not just conv",
    )
    p_plan.add_argument(
        "--top",
        type=int,
        default=0,
        help="show only the N most expensive layers",
    )
    p_plan.add_argument(
        "--timeline",
        action="store_true",
        help="draw the compute-vs-stream timeline",
    )

    p_sel = sub.add_parser("select", help="show Algorithm 2 choices", parents=[perf_opts])
    p_sel.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_sel.add_argument("--config", default="16-16")
    p_sel.add_argument(
        "--json",
        action="store_true",
        help="emit the per-layer choices as machine-readable JSON",
    )

    p_srv = sub.add_parser(
        "serve",
        help="simulate multi-tenant serving with dynamic batching",
        parents=[perf_opts],
    )
    p_srv.add_argument(
        "--mix",
        default="alexnet",
        help='tenant mix, e.g. "alexnet:2,googlenet:1" (weights are traffic shares)',
    )
    p_srv.add_argument("--rate", type=float, default=100.0, help="mean arrival rate, req/s")
    p_srv.add_argument("--duration", type=float, default=10.0, help="offered-load window, s")
    p_srv.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    p_srv.add_argument(
        "--arrival",
        default="poisson",
        choices=["poisson", "bursty", "trace"],
        help="arrival process",
    )
    p_srv.add_argument("--trace", default="", help="trace file for --arrival trace")
    p_srv.add_argument("--burst-factor", type=float, default=4.0)
    p_srv.add_argument("--burst-fraction", type=float, default=0.2)
    p_srv.add_argument("--burst-period", type=float, default=1.0)
    p_srv.add_argument("--slo-ms", type=float, default=250.0, help="per-request latency SLO")
    p_srv.add_argument(
        "--max-batch", type=int, default=16, help="dynamic batching cap (1 = batch-1 serving)"
    )
    p_srv.add_argument(
        "--max-wait-ms", type=float, default=10.0, help="partial-batch dispatch timeout"
    )
    p_srv.add_argument("--queue-depth", type=int, default=256, help="admission queue bound")
    p_srv.add_argument("--queue-order", default="fifo", choices=["fifo", "edf"])
    p_srv.add_argument(
        "--max-age-ms",
        type=float,
        default=0.0,
        help="shed requests older than this at dispatch (0 = never)",
    )
    p_srv.add_argument(
        "--shed-expired",
        action="store_true",
        help="shed requests already past their deadline at dispatch",
    )
    p_srv.add_argument("--replicas", type=int, default=1, help="accelerator instances")
    p_srv.add_argument(
        "--routing", default="round-robin", choices=["round-robin", "least-loaded"]
    )
    p_srv.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_srv.add_argument("--config", default="16-16")
    p_srv.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the metrics JSON here ('-' = stdout only)",
    )

    p_auto = sub.add_parser(
        "autoscale",
        help="closed-loop autoscaling over a diurnal flash-crowd workload",
        parents=[perf_opts],
    )
    p_auto.add_argument(
        "--mix",
        default="vgg:3,alexnet:1",
        help='tenant mix, e.g. "vgg:3,alexnet:1" (weights are traffic shares)',
    )
    p_auto.add_argument("--base-rate", type=float, default=6.0, help="night-trough rate, req/s")
    p_auto.add_argument("--peak-rate", type=float, default=42.0, help="mid-day crest rate, req/s")
    p_auto.add_argument("--days", type=float, default=3.0, help="simulated days")
    p_auto.add_argument(
        "--day-s", type=float, default=100.0, help="seconds per simulated day (compressed)"
    )
    p_auto.add_argument(
        "--flash",
        action="append",
        default=[],
        metavar="START:DURATION:FACTOR",
        help="explicit flash-crowd window (repeatable)",
    )
    p_auto.add_argument(
        "--flash-per-day", type=float, default=1.0, help="seeded random flash crowds per day"
    )
    p_auto.add_argument(
        "--flash-factor", type=float, default=3.0, help="rate multiplier of seeded flashes"
    )
    p_auto.add_argument("--churn", type=float, default=0.0, help="tenant-mix churn in [0,1)")
    p_auto.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    p_auto.add_argument("--slo-ms", type=float, default=600.0, help="per-request latency SLO")
    p_auto.add_argument("--epoch-s", type=float, default=2.0, help="control epoch, simulated s")
    p_auto.add_argument("--replicas", type=int, default=1, help="initial fleet size")
    p_auto.add_argument("--min-replicas", type=int, default=1)
    p_auto.add_argument("--max-replicas", type=int, default=12)
    p_auto.add_argument(
        "--high-band", type=float, default=0.8, help="scale-up band: windowed p95 over SLO"
    )
    p_auto.add_argument(
        "--low-band", type=float, default=0.35, help="scale-down band: windowed p95 over SLO"
    )
    p_auto.add_argument(
        "--cooldown", type=int, default=2, help="epochs to hold after a scale action"
    )
    p_auto.add_argument(
        "--headroom", type=float, default=0.25, help="capacity headroom when demand-sizing"
    )
    p_auto.add_argument(
        "--no-retune",
        action="store_true",
        help="freeze max-batch/max-wait instead of retuning them",
    )
    p_auto.add_argument("--max-batch", type=int, default=16, help="initial dynamic-batching cap")
    p_auto.add_argument(
        "--max-wait-ms", type=float, default=10.0, help="initial partial-batch timeout"
    )
    p_auto.add_argument("--queue-depth", type=int, default=256, help="admission queue bound")
    p_auto.add_argument(
        "--compare",
        action="store_true",
        help="also run static mean-/peak-provisioned baselines",
    )
    p_auto.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_auto.add_argument("--config", default="16-16")
    p_auto.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the metrics JSON here ('-' = stdout only)",
    )

    p_shard = sub.add_parser(
        "shard",
        help="partition a network across multiple accelerator chips",
        parents=[perf_opts],
    )
    p_shard.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_shard.add_argument("--chips", type=int, default=2, help="accelerator instances")
    p_shard.add_argument(
        "--strategy",
        default="pipeline",
        choices=["pipeline", "data-parallel"],
        help="layer pipeline vs batch-sharded replication",
    )
    p_shard.add_argument(
        "--partition",
        default="dp",
        choices=["dp", "even"],
        help="pipeline balancer: optimal DP or naive even-by-count split",
    )
    p_shard.add_argument(
        "--batch",
        type=int,
        default=None,
        help="global batch for data-parallel (default: one image per chip)",
    )
    p_shard.add_argument(
        "--link-gbs",
        type=float,
        default=25.0,
        help="inter-chip link bandwidth, GB/s",
    )
    p_shard.add_argument(
        "--link-latency-us",
        type=float,
        default=1.0,
        help="fixed per-transfer hop latency, microseconds",
    )
    p_shard.add_argument("--config", default="16-16")
    p_shard.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_shard.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the rollup JSON here ('-' = stdout only)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run fault-injection scenarios against the serving tier",
        parents=[perf_opts],
    )
    p_chaos.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="named scenarios to run (default: all; see --list)",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    p_chaos.add_argument("--seed", type=int, default=1, help="fault/workload RNG seed")
    p_chaos.add_argument("--config", default="16-16")
    p_chaos.add_argument(
        "--control",
        action="store_true",
        help="run chaos-under-autoscaling scenarios (self-healing loop vs "
        "frozen fleet vs non-healing loop)",
    )
    p_chaos.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the rollup JSON here ('-' = stdout only)",
    )

    p_ten = sub.add_parser(
        "tenancy",
        help="partition a chip among tenants / compare fleet compositions",
        parents=[perf_opts],
    )
    p_ten.add_argument(
        "mode",
        choices=["partition", "fleet"],
        help="co-resident partitions vs time-mux, or fleet compositions",
    )
    p_ten.add_argument(
        "--tenants",
        default="acme=alexnet:9/nin:1,beta=alexnet:4/nin:1",
        help='per-tenant network mixes, e.g. "acme=alexnet:3/vgg:1@2,beta=nin"',
    )
    p_ten.add_argument("--config", default="32-32", help="chip to partition")
    p_ten.add_argument(
        "--split",
        type=int,
        default=2,
        help="partition mode: split into N equal column strips",
    )
    p_ten.add_argument(
        "--partitions",
        default="",
        metavar="NAME:TINxTOUT,...",
        help='explicit partition specs, e.g. "a:16x32,b:16x32" (overrides --split)',
    )
    p_ten.add_argument(
        "--fleet",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="fleet mode: 'name=class:Tin-Tout[:count],...' (repeatable)",
    )
    p_ten.add_argument("--rate", type=float, default=470.0, help="total arrival rate, req/s")
    p_ten.add_argument("--duration", type=float, default=10.0, help="offered-load window, s")
    p_ten.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    p_ten.add_argument("--slo-ms", type=float, default=250.0, help="per-request latency SLO")
    p_ten.add_argument("--max-batch", type=int, default=16, help="dynamic batching cap")
    p_ten.add_argument(
        "--max-wait-ms", type=float, default=10.0, help="partial-batch dispatch timeout"
    )
    p_ten.add_argument("--queue-depth", type=int, default=256, help="admission queue bound")
    p_ten.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_ten.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the rollup JSON here ('-' = stdout only)",
    )

    p_cap = sub.add_parser(
        "capacity",
        help="what-if capacity planning: rank deployments vs SLOs/faults/cost",
        parents=[perf_opts],
    )
    p_cap.add_argument(
        "--tenants",
        default="acme=alexnet:9/nin:1,beta=alexnet:4/nin:1",
        help='per-tenant network mixes, e.g. "acme=alexnet:3/vgg:1@2,beta=nin"',
    )
    p_cap.add_argument("--rate", type=float, default=300.0, help="mean arrival rate, req/s")
    p_cap.add_argument("--duration", type=float, default=8.0, help="forecast window, s")
    p_cap.add_argument(
        "--forecast",
        default="steady",
        choices=["steady", "diurnal"],
        help="arrival shape (diurnal sweeps --rate (trough) to --peak-rate)",
    )
    p_cap.add_argument("--peak-rate", type=float, default=0.0, help="diurnal crest rate, req/s")
    p_cap.add_argument("--day-s", type=float, default=8.0, help="seconds per simulated day")
    p_cap.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    p_cap.add_argument("--slo-ms", type=float, default=250.0, help="per-request latency SLO")
    p_cap.add_argument(
        "--slo-target", type=float, default=0.95, help="required deadline-hit rate per tenant"
    )
    p_cap.add_argument(
        "--geometries", default="16-16,32-32", help="chip geometries, comma-separated"
    )
    p_cap.add_argument("--chips", default="1,2,4", help="fleet sizes, comma-separated")
    p_cap.add_argument(
        "--strategies",
        default="replicated,pipeline,data-parallel,partitioned",
        help="deployment organisations to search, comma-separated",
    )
    p_cap.add_argument("--groups", default="2", help="chips per shard group options")
    p_cap.add_argument("--splits", default="2", help="partitions per chip options")
    p_cap.add_argument("--max-batches", default="1,16", help="batching cap options")
    p_cap.add_argument("--link-gbs", type=float, default=25.0, help="inter-chip link GB/s")
    p_cap.add_argument("--fault-seed", type=int, default=1, help="fault schedule seed")
    p_cap.add_argument("--crashes", type=int, default=0, help="chip fail-stops to inject")
    p_cap.add_argument("--slowdowns", type=int, default=0, help="chip fail-slow windows")
    p_cap.add_argument(
        "--sdc-windows", type=int, default=0, help="silent-data-corruption windows"
    )
    p_cap.add_argument(
        "--abft", action="store_true", help="serve with ABFT verification on every batch"
    )
    p_cap.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_cap.add_argument(
        "--no-prune", action="store_true", help="simulate every candidate (skip bounds pruning)"
    )
    p_cap.add_argument(
        "--no-persist-cache",
        action="store_true",
        help="do not persist the schedule cache to disk for this run",
    )
    p_cap.add_argument(
        "--cache-dir",
        default="",
        help=f"plan-cache directory (default {'.repro-plan-cache'!r} or $REPRO_PLAN_CACHE_DIR)",
    )
    p_cap.add_argument(
        "--progress", action="store_true", help="log per-candidate progress to stderr"
    )
    p_cap.add_argument("--top", type=int, default=0, help="show only the N best deployments")
    p_cap.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the ranked report JSON here ('-' = stdout only)",
    )

    p_int = sub.add_parser(
        "integrity",
        help="run the ABFT bit-flip injection sweep",
        parents=[perf_opts],
    )
    p_int.add_argument("--seed", type=int, default=0, help="tensor/fault RNG seed")
    p_int.add_argument(
        "--flips", type=int, default=4, help="flips per (layer, path, site) cell"
    )
    p_int.add_argument(
        "--smoke", action="store_true", help="reduced sweep for CI smoke runs"
    )
    p_int.add_argument("--config", default="16-16")
    p_int.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="write the rollup JSON here ('-' = stdout only)",
    )

    p_sim = sub.add_parser(
        "simulate",
        help="compile, lint and machine-execute a network",
        parents=[perf_opts],
    )
    p_sim.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_sim.add_argument("--config", default="16-16")
    p_sim.add_argument("--policy", default="adaptive-2", choices=POLICY_NAMES)
    p_sim.add_argument("--asm", default="", help="also dump the assembly to a file")

    p_cmp = sub.add_parser("compare", help="diff two policies layer by layer", parents=[perf_opts])
    p_cmp.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_cmp.add_argument("policy_a", choices=POLICY_NAMES)
    p_cmp.add_argument("policy_b", choices=POLICY_NAMES)
    p_cmp.add_argument("--config", default="16-16")

    p_an = sub.add_parser("analyze", help="reuse/quantization analytics", parents=[perf_opts])
    p_an.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p_an.add_argument("--config", default="16-16")
    p_an.add_argument(
        "--quantization",
        action="store_true",
        help="also run the 16-bit fixed-point SQNR probe",
    )

    p_nets = sub.add_parser(
        "networks", help="list benchmark networks (Table 2)", parents=[perf_opts]
    )
    p_nets.add_argument(
        "--detail",
        default="",
        choices=[""] + sorted(NETWORK_BUILDERS),
        help="per-layer statistics for one network",
    )
    p_nets.add_argument("--top", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {
        "report": cmd_report,
        "plan": cmd_plan,
        "select": cmd_select,
        "analyze": cmd_analyze,
        "compare": cmd_compare,
        "simulate": cmd_simulate,
        "networks": cmd_networks,
        "serve": cmd_serve,
        "autoscale": cmd_autoscale,
        "shard": cmd_shard,
        "chaos": cmd_chaos,
        "integrity": cmd_integrity,
        "tenancy": cmd_tenancy,
        "capacity": cmd_capacity,
    }

    from repro.perf import schedule_cache, set_default_jobs

    if getattr(args, "no_plan_cache", False):
        schedule_cache.configure(enabled=False)
    if getattr(args, "backend", None):
        from repro.sim.backend import set_backend

        set_backend(args.backend)
    if getattr(args, "jobs", None) is not None:
        from repro.errors import ConfigError

        try:
            set_default_jobs(args.jobs)
        except ConfigError as exc:
            parser.error(str(exc))
    rc = handlers[args.command](args)
    if getattr(args, "perf_report", False):
        from repro.perf import render_perf_report

        print()
        print(render_perf_report())
    return rc


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        sys.exit(0)
