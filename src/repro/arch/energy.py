"""Energy model: per-operation tables standing in for the DC synthesis report.

The paper's Table 5 ("PEs energy reduction") and Fig. 10 (buffer traffic) are
relative comparisons between schemes on the *same* silicon, so what matters
is the activity counts (array cycles, adder operations, buffer word accesses)
multiplied by fixed per-op costs.  The constants below are 45 nm-class
figures (16-bit datapath): a fixed-point multiply is ~0.6 pJ, an add ~0.05 pJ,
an SRAM word access grows with macro size, and DRAM is ~two orders of
magnitude above SRAM.  Absolute joules are not meaningful for the
reproduction — ratios are, and those depend only on the counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.arch.buffers import AccessCounter
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError

__all__ = ["EnergyTable", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-operation energies in picojoules (45 nm, 16-bit words)."""

    mult_pj: float = 0.6
    add_pj: float = 0.05
    #: SRAM access energy for a 1 KB macro; scaled by sqrt(capacity) below.
    sram_base_pj: float = 0.35
    dram_access_pj: float = 320.0

    def __post_init__(self) -> None:
        for name in ("mult_pj", "add_pj", "sram_base_pj", "dram_access_pj"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def sram_access_pj(self, capacity_bytes: int) -> float:
        """Word-access energy of an SRAM macro of the given capacity.

        Access energy grows roughly with the square root of macro area
        (bitline/wordline length), the standard CACTI-style scaling.
        """
        if capacity_bytes <= 0:
            raise ConfigError("capacity must be positive")
        kb = capacity_bytes / 1024.0
        return self.sram_base_pj * math.sqrt(max(kb, 1.0))


@dataclass
class EnergyBreakdown:
    """Energy of one schedule, split by component (picojoules)."""

    pe_pj: float = 0.0
    input_buffer_pj: float = 0.0
    output_buffer_pj: float = 0.0
    weight_buffer_pj: float = 0.0
    bias_buffer_pj: float = 0.0
    dram_pj: float = 0.0

    @property
    def buffer_pj(self) -> float:
        """All on-chip buffer energy."""
        return (
            self.input_buffer_pj
            + self.output_buffer_pj
            + self.weight_buffer_pj
            + self.bias_buffer_pj
        )

    @property
    def total_pj(self) -> float:
        return self.pe_pj + self.buffer_pj + self.dram_pj

    def add(self, other: "EnergyBreakdown") -> None:
        self.pe_pj += other.pe_pj
        self.input_buffer_pj += other.input_buffer_pj
        self.output_buffer_pj += other.output_buffer_pj
        self.weight_buffer_pj += other.weight_buffer_pj
        self.bias_buffer_pj += other.bias_buffer_pj
        self.dram_pj += other.dram_pj


class EnergyModel:
    """Maps activity counts to energy for a given accelerator configuration."""

    def __init__(
        self, config: AcceleratorConfig, table: EnergyTable = EnergyTable()
    ) -> None:
        self.config = config
        self.table = table
        self._buffer_access_pj: Dict[str, float] = {
            "input": table.sram_access_pj(config.input_buffer_bytes),
            "output": table.sram_access_pj(config.output_buffer_bytes),
            "weight": table.sram_access_pj(config.weight_buffer_bytes),
            "bias": table.sram_access_pj(config.bias_buffer_bytes),
        }

    def buffer_access_pj(self, buffer_name: str) -> float:
        """Energy per word access for one of the four named buffers."""
        try:
            return self._buffer_access_pj[buffer_name]
        except KeyError:
            raise ConfigError(f"unknown buffer {buffer_name!r}") from None

    def pe_energy_pj(self, operations: int, extra_adds: int = 0) -> float:
        """Energy of the PE array over ``operations`` cycles.

        The array is rigid SIMD: every cycle clocks all ``Tin*Tout``
        multipliers and all adder trees whether or not each lane carries a
        useful value — this is what makes the under-utilized inter-kernel
        scheme expensive on conv1-like layers.  ``extra_adds`` charges the
        additional "add-and-store" adder group of the improved inter-kernel
        scheme (Sec 4.2.2).
        """
        if operations < 0 or extra_adds < 0:
            raise ConfigError("counts must be non-negative")
        cfg = self.config
        mult = operations * cfg.multipliers * self.table.mult_pj
        tree = operations * cfg.tout * max(0, cfg.tin - 1) * self.table.add_pj
        extra = extra_adds * self.table.add_pj
        return mult + tree + extra

    def buffer_energy_pj(self, accesses: Dict[str, AccessCounter]) -> Dict[str, float]:
        """Per-buffer energy for the given access counters."""
        return {
            name: counter.total * self.buffer_access_pj(name)
            for name, counter in accesses.items()
        }

    def dram_energy_pj(self, words: int) -> float:
        """Energy for ``words`` transferred over the DRAM interface."""
        if words < 0:
            raise ConfigError("word count must be non-negative")
        return words * self.table.dram_access_pj

    def breakdown(
        self,
        operations: int,
        accesses: Dict[str, AccessCounter],
        dram_words: int = 0,
        extra_adds: int = 0,
    ) -> EnergyBreakdown:
        """Full energy breakdown for one schedule's activity counts."""
        per_buf = self.buffer_energy_pj(accesses)
        return EnergyBreakdown(
            pe_pj=self.pe_energy_pj(operations, extra_adds=extra_adds),
            input_buffer_pj=per_buf.get("input", 0.0),
            output_buffer_pj=per_buf.get("output", 0.0),
            weight_buffer_pj=per_buf.get("weight", 0.0),
            bias_buffer_pj=per_buf.get("bias", 0.0),
            dram_pj=self.dram_energy_pj(dram_words),
        )
