"""Burst-level DRAM model: what data alignment is worth in bandwidth.

The flat ``dram_words_per_cycle`` figure in :class:`AcceleratorConfig` is
the *sustained, unit-stride* rate.  This module models where that number
comes from — and what happens when a scheme's access pattern is not
unit-stride, which is the quantitative backing for the paper's insistence
on layouts that keep each scheme's stream contiguous ("ensures good data
reusability and easy alignment in memory and buffer").

Model: DRAM transfers fixed ``burst_words`` bursts; a stream of ``words``
at access stride ``stride_words`` touches

    bursts = ceil(words * min(stride_words, burst_words) / burst_words)

bursts (a stride >= the burst length wastes the whole burst per word).
Each burst costs ``cycles_per_burst``; a fraction of bursts additionally
pays ``row_miss_penalty`` when the stream hops DRAM rows.

With the defaults, a unit-stride stream sustains 4 words/cycle (matching
the flat model) while a stride-4 stream sustains ~1 word/cycle — a 4x
bandwidth loss purely from misalignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["DramModel", "DEFAULT_DRAM"]


@dataclass(frozen=True)
class DramModel:
    """Burst-granular DRAM timing."""

    #: words per burst (a 64-byte burst of 16-bit words)
    burst_words: int = 32
    #: accelerator cycles to deliver one burst (sets peak bandwidth)
    cycles_per_burst: float = 8.0
    #: words per DRAM row (1 KB row of 16-bit words)
    row_words: int = 512
    #: extra cycles when a burst opens a new row
    row_miss_penalty: float = 4.0

    def __post_init__(self) -> None:
        if self.burst_words <= 0 or self.row_words <= 0:
            raise ConfigError("burst/row sizes must be positive")
        if self.cycles_per_burst <= 0 or self.row_miss_penalty < 0:
            raise ConfigError("timings must be positive (penalty >= 0)")
        if self.row_words % self.burst_words:
            raise ConfigError("row size must be a multiple of the burst size")

    @property
    def peak_words_per_cycle(self) -> float:
        """Unit-stride sustained bandwidth (row misses amortized)."""
        bursts_per_row = self.row_words / self.burst_words
        cycles_per_row = (
            bursts_per_row * self.cycles_per_burst + self.row_miss_penalty
        )
        return self.row_words / cycles_per_row

    def bursts_for_stream(self, words: int, stride_words: int = 1) -> int:
        """Bursts touched by ``words`` accesses at a fixed stride."""
        if words < 0 or stride_words <= 0:
            raise ConfigError("words must be >= 0 and stride positive")
        if words == 0:
            return 0
        useful_per_burst = max(1, self.burst_words // stride_words)
        return math.ceil(words / useful_per_burst)

    def cycles_for_stream(self, words: int, stride_words: int = 1) -> float:
        """Cycles to move ``words`` at the given access stride."""
        bursts = self.bursts_for_stream(words, stride_words)
        if bursts == 0:
            return 0.0
        # consecutive bursts share a row until it is exhausted
        span_words = words * stride_words
        row_misses = max(1, math.ceil(span_words / self.row_words))
        return bursts * self.cycles_per_burst + row_misses * self.row_miss_penalty

    def effective_words_per_cycle(self, words: int, stride_words: int = 1) -> float:
        """Achieved bandwidth for a stream (words per cycle)."""
        cycles = self.cycles_for_stream(words, stride_words)
        return words / cycles if cycles else 0.0

    def alignment_penalty(self, words: int, stride_words: int) -> float:
        """Slowdown of a strided stream vs the same words at unit stride."""
        unit = self.cycles_for_stream(words, 1)
        strided = self.cycles_for_stream(words, stride_words)
        return strided / unit if unit else 1.0


#: defaults calibrated so unit-stride sustains ~4 words/cycle, matching
#: AcceleratorConfig.dram_words_per_cycle
DEFAULT_DRAM = DramModel()
