"""PE-array model: operation counting and utilization.

One *operation* clocks the whole array for one cycle: ``Tin`` data words are
multiplied against ``Tin`` weights in each of ``Tout`` lanes and each lane's
adder tree reduces its products to one partial sum.  The array is a rigid
SIMD structure — if a scheme can only supply ``u <= Tin`` useful data words,
the remaining ``Tin - u`` multipliers still burn a cycle (this is exactly the
inter-kernel waste on conv1 the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError

__all__ = ["PEArray", "OperationTally"]


@dataclass
class OperationTally:
    """Accumulated PE-array activity for a schedule.

    ``operations`` is the number of array cycles spent computing;
    ``useful_macs`` counts multiplies that contributed to a real output.
    """

    operations: int = 0
    useful_macs: int = 0
    #: adder-tree additions performed alongside the multiplies
    adds: int = 0

    def add(self, other: "OperationTally") -> None:
        self.operations += other.operations
        self.useful_macs += other.useful_macs
        self.adds += other.adds


class PEArray:
    """The computational block of Fig. 2: ``Tin x Tout`` multipliers."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.tally = OperationTally()

    @property
    def tin(self) -> int:
        return self.config.tin

    @property
    def tout(self) -> int:
        return self.config.tout

    @property
    def macs_per_operation(self) -> int:
        """Peak multiplies per array cycle."""
        return self.config.multipliers

    def issue(self, operations: int, useful_macs: int) -> None:
        """Record ``operations`` array cycles performing ``useful_macs`` real MACs.

        ``useful_macs`` may not exceed the array's peak for that many cycles.
        """
        if operations < 0 or useful_macs < 0:
            raise ConfigError("operation/mac counts must be non-negative")
        peak = operations * self.macs_per_operation
        if useful_macs > peak:
            raise ConfigError(
                f"{useful_macs} useful MACs cannot fit in {operations} "
                f"operations of a {self.config.name} array (peak {peak})"
            )
        self.tally.operations += operations
        self.tally.useful_macs += useful_macs
        # each lane's adder tree performs Tin-1 adds per operation
        self.tally.adds += operations * self.tout * max(0, self.tin - 1)

    @property
    def utilization(self) -> float:
        """Fraction of multiplier-cycles doing useful work (0 when idle)."""
        peak = self.tally.operations * self.macs_per_operation
        if peak == 0:
            return 0.0
        return self.tally.useful_macs / peak

    def reset(self) -> None:
        self.tally = OperationTally()
