"""On-chip buffer model: capacities and access accounting.

The paper's energy argument (Sec 4.1.2, Table 5, Fig 10) rests on *counting
buffer accesses* per scheme: inter-kernel reloads both data and weights every
operation, intra-kernel holds one side resident, and the improved inter-kernel
trades extra output-buffer stores for far fewer input loads.  This module
provides the counters those models write into, plus capacity checks used by
:mod:`repro.tiling.fit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.errors import CapacityError, ConfigError

__all__ = ["AccessCounter", "Buffer", "BufferSet"]


@dataclass
class AccessCounter:
    """Load/store word counts for one buffer."""

    loads: int = 0
    stores: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores

    def add(self, other: "AccessCounter") -> None:
        self.loads += other.loads
        self.stores += other.stores

    def scaled(self, factor: int) -> "AccessCounter":
        """A copy with both counters multiplied (used for per-group repeats)."""
        return AccessCounter(self.loads * factor, self.stores * factor)


@dataclass
class Buffer:
    """A single on-chip SRAM: capacity in words plus an access counter."""

    name: str
    capacity_words: int
    counter: AccessCounter = field(default_factory=AccessCounter)

    def __post_init__(self) -> None:
        if self.capacity_words <= 0:
            raise ConfigError(f"buffer {self.name!r} needs positive capacity")

    def fits(self, words: int) -> bool:
        """Whether a working set of ``words`` fits entirely on chip."""
        return words <= self.capacity_words

    def require(self, words: int) -> None:
        """Raise :class:`CapacityError` if ``words`` cannot fit."""
        if not self.fits(words):
            raise CapacityError(
                f"{self.name}: working set of {words} words exceeds "
                f"capacity {self.capacity_words}"
            )

    def load(self, words: int) -> None:
        """Record ``words`` read from this buffer into the PE array."""
        if words < 0:
            raise ConfigError("load word count must be non-negative")
        self.counter.loads += words

    def store(self, words: int) -> None:
        """Record ``words`` written into this buffer."""
        if words < 0:
            raise ConfigError("store word count must be non-negative")
        self.counter.stores += words


class BufferSet:
    """The accelerator's four buffers (Table 3) with shared accounting."""

    def __init__(
        self,
        input_words: int,
        output_words: int,
        weight_words: int,
        bias_words: int,
    ) -> None:
        self.input = Buffer("input", input_words)
        self.output = Buffer("output", output_words)
        self.weight = Buffer("weight", weight_words)
        self.bias = Buffer("bias", bias_words)

    @classmethod
    def from_config(cls, config) -> "BufferSet":
        """Build from an :class:`~repro.arch.config.AcceleratorConfig`."""
        return cls(
            input_words=config.input_buffer_bytes // config.word_bytes,
            output_words=config.output_buffer_bytes // config.word_bytes,
            weight_words=config.weight_buffer_bytes // config.word_bytes,
            bias_words=config.bias_buffer_bytes // config.word_bytes,
        )

    def __iter__(self) -> Iterator[Buffer]:
        return iter((self.input, self.output, self.weight, self.bias))

    def totals(self) -> Dict[str, AccessCounter]:
        """Per-buffer access counters keyed by buffer name."""
        return {b.name: b.counter for b in self}

    @property
    def total_accesses(self) -> int:
        """Grand total of load+store word accesses across all buffers."""
        return sum(b.counter.total for b in self)

    def reset(self) -> None:
        """Zero all counters (capacities are unchanged)."""
        for b in self:
            b.counter = AccessCounter()
