"""Named accelerator presets: the design space's landmarks.

Beyond Table 3's two C-Brain configurations, these presets approximate the
PE/buffer budgets of the designs the paper positions itself against, so a
user can replay the whole evaluation on a neighbouring architecture with
one name:

* ``cbrain-16-16`` / ``cbrain-32-32`` — Table 3 verbatim;
* ``diannao`` — DianNao [8]: 16x16 multiplier tree (the paper's ``inter``
  baseline *is* its dataflow) but with DianNao's much smaller SRAMs
  (2 KB x 3 buffers scaled here to its published 44 KB total);
* ``zhang-fpga`` — the [14] budget: 7x64 unroll at 100 MHz with generous
  FPGA BRAM;
* ``shidiannao`` — ShiDianNao [15]: a 16x16 mesh-era budget with 288 KB of
  on-chip SRAM, no external DRAM dependence for its target workloads (we
  keep a narrow 1 word/cycle DMA to reflect its sensor-streaming context);
* ``embedded`` — a deliberately starved corner (8x8, 256 KB, 1 word/cycle)
  for stress-testing the planner.

These are architectural *budgets* for what-if exploration, not bit-exact
reconstructions of those chips.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import CONFIG_16_16, CONFIG_32_32, AcceleratorConfig
from repro.errors import ConfigError

__all__ = ["PRESETS", "preset", "preset_names"]

KB = 1024
MB = 1024 * KB

PRESETS: Dict[str, AcceleratorConfig] = {
    "cbrain-16-16": CONFIG_16_16,
    "cbrain-32-32": CONFIG_32_32,
    "diannao": AcceleratorConfig(
        tin=16,
        tout=16,
        input_buffer_bytes=16 * KB,
        output_buffer_bytes=16 * KB,
        weight_buffer_bytes=16 * KB,
        bias_buffer_bytes=2 * KB,
        frequency_hz=0.98e9,
        dram_words_per_cycle=4.0,
    ),
    "zhang-fpga": AcceleratorConfig(
        tin=7,
        tout=64,
        input_buffer_bytes=2 * MB,
        output_buffer_bytes=2 * MB,
        weight_buffer_bytes=2 * MB,
        bias_buffer_bytes=4 * KB,
        frequency_hz=100e6,
        dram_words_per_cycle=8.0,
    ),
    "shidiannao": AcceleratorConfig(
        tin=16,
        tout=16,
        input_buffer_bytes=128 * KB,
        output_buffer_bytes=128 * KB,
        weight_buffer_bytes=32 * KB,
        bias_buffer_bytes=2 * KB,
        frequency_hz=1e9,
        dram_words_per_cycle=1.0,
    ),
    "embedded": AcceleratorConfig(
        tin=8,
        tout=8,
        input_buffer_bytes=128 * KB,
        output_buffer_bytes=96 * KB,
        weight_buffer_bytes=32 * KB,
        bias_buffer_bytes=1 * KB,
        frequency_hz=500e6,
        dram_words_per_cycle=1.0,
    ),
}


def preset(name: str) -> AcceleratorConfig:
    """Look up a named preset."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def preset_names() -> List[str]:
    return sorted(PRESETS)
