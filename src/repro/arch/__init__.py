"""Accelerator hardware model: configuration, buffers, PE array, energy."""

from repro.arch.buffers import AccessCounter, Buffer, BufferSet
from repro.arch.config import (
    CONFIG_16_16,
    CONFIG_32_32,
    AcceleratorConfig,
    named_config,
)
from repro.arch.dram import DEFAULT_DRAM, DramModel
from repro.arch.energy import EnergyBreakdown, EnergyModel, EnergyTable
from repro.arch.fixedpoint import (
    Q7_8,
    FixedPointFormat,
    SaturationStats,
    dequantize,
    quantize,
)
from repro.arch.pe import OperationTally, PEArray
from repro.arch.presets import PRESETS, preset, preset_names

__all__ = [
    "AccessCounter",
    "Buffer",
    "BufferSet",
    "CONFIG_16_16",
    "CONFIG_32_32",
    "AcceleratorConfig",
    "named_config",
    "DEFAULT_DRAM",
    "DramModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyTable",
    "Q7_8",
    "FixedPointFormat",
    "SaturationStats",
    "dequantize",
    "quantize",
    "PRESETS",
    "preset",
    "preset_names",
    "OperationTally",
    "PEArray",
]
