"""16-bit fixed-point arithmetic (the paper's PE datapath width).

Table 3 specifies a 16-bit fixed-point datapath, validated "good enough" with
reference to DianNao [8].  This module provides the quantize/dequantize pair
used by the functional simulator so that schedule-equivalence tests can also
be run at datapath precision, plus saturating arithmetic helpers matching
what a hardware MAC would do.

Format: Qm.n two's-complement, default Q7.8 (1 sign bit, 7 integer bits,
8 fraction bits), which covers typical post-normalization activation ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "FixedPointFormat",
    "Q7_8",
    "SaturationStats",
    "quantize",
    "dequantize",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed Qm.n fixed-point format stored in ``total_bits`` bits."""

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits <= 1:
            raise ConfigError("need at least a sign bit plus one value bit")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ConfigError(
                f"frac_bits {self.frac_bits} out of range for "
                f"{self.total_bits}-bit format"
            )

    @property
    def scale(self) -> int:
        """Integer units per 1.0 (``2**frac_bits``)."""
        return 1 << self.frac_bits

    @property
    def max_int(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return self.min_int / self.scale

    @property
    def resolution(self) -> float:
        """Real-value step between adjacent codes."""
        return 1.0 / self.scale


#: The default Q7.8 16-bit format.
Q7_8 = FixedPointFormat(total_bits=16, frac_bits=8)


@dataclass
class SaturationStats:
    """Counts values the quantizer had to clip — a silent-corruption source.

    Quantization saturates out-of-range values without complaint, which is
    the correct hardware behaviour but hides a numerics problem from the
    caller.  Pass an instance to :func:`quantize` to make the clipping
    visible; accumulate across calls to audit a whole network's operands.
    """

    total: int = 0
    saturated_high: int = 0
    saturated_low: int = 0
    by_call: list = field(default_factory=list, repr=False)

    @property
    def saturated(self) -> int:
        return self.saturated_high + self.saturated_low

    @property
    def saturation_rate(self) -> float:
        return self.saturated / self.total if self.total else 0.0

    def update(self, scaled: np.ndarray, fmt: FixedPointFormat) -> None:
        high = int(np.count_nonzero(scaled > fmt.max_int))
        low = int(np.count_nonzero(scaled < fmt.min_int))
        self.total += int(scaled.size)
        self.saturated_high += high
        self.saturated_low += low
        self.by_call.append((int(scaled.size), high, low))

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "saturated_high": self.saturated_high,
            "saturated_low": self.saturated_low,
            "saturation_rate": round(self.saturation_rate, 6),
        }


def quantize(
    values: np.ndarray,
    fmt: FixedPointFormat = Q7_8,
    stats: Optional[SaturationStats] = None,
) -> np.ndarray:
    """Quantize real values to fixed-point integer codes (saturating).

    Returns an ``int64`` array of codes (kept wider than the format so the
    caller can accumulate without immediate overflow, as real MAC datapaths
    keep wide accumulators).  NaN/inf inputs are rejected with a
    :class:`~repro.errors.ConfigError` — silently clipping them would turn a
    numerics bug into plausible-looking saturated codes.  Pass a
    :class:`SaturationStats` to count how many values the clip touched.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
        raise ConfigError(
            f"quantize input contains {bad} non-finite value(s) (NaN/inf); "
            f"refusing to fold them into saturated codes"
        )
    scaled = np.rint(arr * fmt.scale)
    if stats is not None:
        stats.update(scaled, fmt)
    return np.clip(scaled, fmt.min_int, fmt.max_int).astype(np.int64)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat = Q7_8) -> np.ndarray:
    """Map integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) / fmt.scale
