"""16-bit fixed-point arithmetic (the paper's PE datapath width).

Table 3 specifies a 16-bit fixed-point datapath, validated "good enough" with
reference to DianNao [8].  This module provides the quantize/dequantize pair
used by the functional simulator so that schedule-equivalence tests can also
be run at datapath precision, plus saturating arithmetic helpers matching
what a hardware MAC would do.

Format: Qm.n two's-complement, default Q7.8 (1 sign bit, 7 integer bits,
8 fraction bits), which covers typical post-normalization activation ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["FixedPointFormat", "Q7_8", "quantize", "dequantize"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed Qm.n fixed-point format stored in ``total_bits`` bits."""

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits <= 1:
            raise ConfigError("need at least a sign bit plus one value bit")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ConfigError(
                f"frac_bits {self.frac_bits} out of range for "
                f"{self.total_bits}-bit format"
            )

    @property
    def scale(self) -> int:
        """Integer units per 1.0 (``2**frac_bits``)."""
        return 1 << self.frac_bits

    @property
    def max_int(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_int(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return self.min_int / self.scale

    @property
    def resolution(self) -> float:
        """Real-value step between adjacent codes."""
        return 1.0 / self.scale


#: The default Q7.8 16-bit format.
Q7_8 = FixedPointFormat(total_bits=16, frac_bits=8)


def quantize(values: np.ndarray, fmt: FixedPointFormat = Q7_8) -> np.ndarray:
    """Quantize real values to fixed-point integer codes (saturating).

    Returns an ``int32`` array of codes (kept wider than the format so the
    caller can accumulate without immediate overflow, as real MAC datapaths
    keep wide accumulators).
    """
    scaled = np.rint(np.asarray(values, dtype=np.float64) * fmt.scale)
    return np.clip(scaled, fmt.min_int, fmt.max_int).astype(np.int64)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat = Q7_8) -> np.ndarray:
    """Map integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) / fmt.scale
