"""Accelerator configuration (the paper's Table 3).

A configuration is named after its PE width, e.g. ``16-16`` means the
computation engine takes 16 inputs from input feature maps and 16 inputs
from weights, i.e. ``Tin * Tout = 256`` multipliers feeding ``Tout = 16``
adder trees.  Buffer sizes default to Table 3: 2 MB input/output buffers,
1 MB weight buffer, 4 KB bias buffer; every primitive operation
(multiplication, add, load, store) costs one cycle, i.e. the pipelined
array retires one operation per cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ConfigError

__all__ = ["AcceleratorConfig", "CONFIG_16_16", "CONFIG_32_32", "named_config"]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class AcceleratorConfig:
    """Hardware parameters of the C-Brain-style accelerator.

    Attributes
    ----------
    tin:
        Data-side PE width: input-feature-map words consumed per cycle.
    tout:
        Output-side PE width: number of adder trees / partial sums per cycle.
    input_buffer_bytes / output_buffer_bytes / weight_buffer_bytes / bias_buffer_bytes:
        On-chip SRAM capacities (Table 3).
    word_bytes:
        Datapath word width; the paper uses 16-bit fixed point.
    frequency_hz:
        Clock used to convert cycles to time (1 GHz in Table 4,
        down-scaled to 100 MHz for the Fig. 9 comparison).
    dram_words_per_cycle:
        Sustained off-chip DMA bandwidth in words per accelerator cycle,
        used to charge off-chip spill traffic when a working set exceeds
        the on-chip buffers (the paper's VGG discussion).
    """

    tin: int = 16
    tout: int = 16
    input_buffer_bytes: int = 2 * MB
    output_buffer_bytes: int = 2 * MB
    weight_buffer_bytes: int = 1 * MB
    bias_buffer_bytes: int = 4 * KB
    word_bytes: int = 2
    frequency_hz: float = 1e9
    dram_words_per_cycle: float = 4.0
    #: double buffering: overlap compute with the DMA/reshape streams.
    #: Disabling it serializes the two (the ablation for the paper's
    #: "moves the data fetch operations off the critical path" claim).
    overlap_streams: bool = True

    def __post_init__(self) -> None:
        if self.tin <= 0:
            raise ConfigError(f"tin must be positive, got {self.tin!r}")
        if self.tout <= 0:
            raise ConfigError(f"tout must be positive, got {self.tout!r}")
        for attr in (
            "input_buffer_bytes",
            "output_buffer_bytes",
            "weight_buffer_bytes",
            "bias_buffer_bytes",
            "word_bytes",
            "dram_words_per_cycle",
        ):
            value = getattr(self, attr)
            if value <= 0:
                raise ConfigError(f"{attr} must be positive, got {value!r}")
        if self.frequency_hz <= 0:
            raise ConfigError(
                f"frequency_hz must be positive, got {self.frequency_hz!r}"
            )

    @property
    def multipliers(self) -> int:
        """Total multipliers in the PE array (``Tin * Tout``)."""
        return self.tin * self.tout

    @property
    def name(self) -> str:
        """The paper's naming convention, e.g. ``"16-16"``."""
        return f"{self.tin}-{self.tout}"

    @property
    def input_buffer_words(self) -> int:
        return self.input_buffer_bytes // self.word_bytes

    @property
    def output_buffer_words(self) -> int:
        return self.output_buffer_bytes // self.word_bytes

    @property
    def weight_buffer_words(self) -> int:
        return self.weight_buffer_bytes // self.word_bytes

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at this clock."""
        return cycles / self.frequency_hz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at this clock."""
        return self.cycles_to_seconds(cycles) * 1e3

    def with_pe(self, tin: int, tout: int) -> "AcceleratorConfig":
        """Copy with a different PE width (used for design-space sweeps)."""
        return replace(self, tin=tin, tout=tout)

    def with_frequency(self, hz: float) -> "AcceleratorConfig":
        """Copy with a different clock (Fig. 9 down-scales to 100 MHz)."""
        return replace(self, frequency_hz=hz)

    def partition(
        self,
        tin: int,
        tout: int,
        buffer_fraction: Optional[float] = None,
        dram_fraction: Optional[float] = None,
    ) -> "AcceleratorConfig":
        """Derive the sub-accelerator config of one chip partition.

        Carving ``tin x tout`` multipliers plus a share of the SRAM and DMA
        budget out of this chip yields a first-class config: planning,
        caching, and serving treat it as just another geometry (the same
        trick :func:`repro.resilience.degrade.degraded_config` plays for PE
        masks).  Fractions default to the partition's share of the PE
        array, ``(tin * tout) / multipliers``; a full-chip partition
        (``tin == self.tin``, ``tout == self.tout``, fractions 1) derives a
        config *equal* to the parent, so degenerate partitions are
        bit-identical to whole-chip planning by construction.

        Clock and overlap semantics are inherited — partitions share the
        parent's clock domain.
        """
        for label, value in (("tin", tin), ("tout", tout)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"partition {label} must be an int, got {value!r} "
                    f"({type(value).__name__})"
                )
            if value <= 0:
                raise ConfigError(
                    f"partition {label} must be positive, got {value!r}"
                )
        if tin > self.tin:
            raise ConfigError(
                f"partition tin {tin} exceeds the parent chip's tin {self.tin}"
            )
        if tout > self.tout:
            raise ConfigError(
                f"partition tout {tout} exceeds the parent chip's tout {self.tout}"
            )
        area_fraction = (tin * tout) / self.multipliers
        if buffer_fraction is None:
            buffer_fraction = area_fraction
        if dram_fraction is None:
            dram_fraction = area_fraction
        for label, fraction in (
            ("buffer_fraction", buffer_fraction),
            ("dram_fraction", dram_fraction),
        ):
            if not 0 < fraction <= 1:
                raise ConfigError(
                    f"partition {label} must be in (0, 1], got {fraction!r}"
                )

        def share(total_bytes: int) -> int:
            scaled = int(total_bytes * buffer_fraction)
            aligned = (scaled // self.word_bytes) * self.word_bytes
            if aligned <= 0:
                raise ConfigError(
                    f"buffer_fraction {buffer_fraction!r} of {total_bytes} "
                    f"bytes leaves no whole-word buffer for the partition"
                )
            return aligned

        return replace(
            self,
            tin=tin,
            tout=tout,
            input_buffer_bytes=share(self.input_buffer_bytes),
            output_buffer_bytes=share(self.output_buffer_bytes),
            weight_buffer_bytes=share(self.weight_buffer_bytes),
            bias_buffer_bytes=share(self.bias_buffer_bytes),
            dram_words_per_cycle=self.dram_words_per_cycle * dram_fraction,
        )

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form (JSON-friendly) for config files and exports."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "AcceleratorConfig":
        """Inverse of :meth:`to_dict`.

        Unknown keys are a hard error naming each unexpected key (a typoed
        knob silently falling back to its default would be far worse), and
        the constructor's validation rejects non-positive values with the
        offending value in the message.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            noun = "key" if len(unknown) == 1 else "keys"
            raise ConfigError(
                f"unknown config {noun} {', '.join(map(repr, unknown))}; "
                f"valid keys: {sorted(fields)}"
            )
        return cls(**data)


#: Table 3's two evaluated PE widths.
CONFIG_16_16 = AcceleratorConfig(tin=16, tout=16)
CONFIG_32_32 = AcceleratorConfig(tin=32, tout=32)


def named_config(name: str) -> AcceleratorConfig:
    """Parse a ``"Tin-Tout"`` string into a configuration."""
    try:
        tin_s, tout_s = name.split("-")
        return AcceleratorConfig(tin=int(tin_s), tout=int(tout_s))
    except (ValueError, TypeError):
        raise ConfigError(f"bad configuration name {name!r}; expected 'Tin-Tout'") from None
