"""Ablation — Algorithm 2's selection rule against alternatives.

The rule has one magic comparison: partition when ``Din < Tin``.  This
ablation re-plans every benchmark network with the threshold scaled by
alpha in {0, 0.5, 1, 2, inf} (0 = never partition = "inter+intra only",
inf = always partition where legal) and compares against the exhaustive
per-layer oracle:

* the paper's alpha = 1 sits within 10% of the oracle on every network;
* disabling partition (alpha = 0) gives up the conv1 win;
* always-partition (alpha = inf) pays on deep top layers at 16-16.
"""

from repro.adaptive.search import best_scheme_for_layer
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.errors import ScheduleError
from repro.nn.zoo import benchmark_networks
from repro.schemes import make_scheme

ALPHAS = (0.0, 0.5, 1.0, 2.0, float("inf"))


def rule_cycles(net, config, alpha: float) -> float:
    """Total conv cycles under a threshold-scaled Algorithm 2."""
    total = 0.0
    for ctx in net.conv_contexts():
        k, s = ctx.layer.kernel, ctx.layer.stride
        d = ctx.layer.in_maps // ctx.layer.groups
        if k == s and k != 1:
            name = "intra"
        elif s < k and d < alpha * config.tin:
            name = "partition"
        else:
            name = "inter-improved"
        try:
            total += make_scheme(name).schedule(ctx, config).total_cycles
        except ScheduleError:
            total += make_scheme("intra").schedule(ctx, config).total_cycles
    return total


def oracle_cycles(net, config) -> float:
    return sum(
        best_scheme_for_layer(ctx, config).result.total_cycles
        for ctx in net.conv_contexts()
    )


def run():
    config = CONFIG_16_16
    data = {}
    for net in benchmark_networks():
        data[net.name] = {
            "oracle": oracle_cycles(net, config),
            **{alpha: rule_cycles(net, config, alpha) for alpha in ALPHAS},
        }
    return data


def test_selector_threshold_ablation(benchmark, report):
    data = benchmark(run)

    headers = ["network", "oracle"] + [f"a={a}" for a in ALPHAS]
    rows = [
        [name, f"{d['oracle']:.4g}"] + [f"{d[a]:.4g}" for a in ALPHAS]
        for name, d in data.items()
    ]
    report(
        "Ablation — Algorithm 2 threshold (Din < alpha*Tin), cycles @16-16",
        format_table(headers, rows),
    )

    for name, d in data.items():
        # the paper's rule is near-oracle
        assert d[1.0] <= 1.10 * d["oracle"], name
        # never worse than disabling partition entirely
        assert d[1.0] <= d[0.0] * 1.0001, name

    # disabling partition forfeits the conv1 win on the shallow-input nets
    for name in ("alexnet", "googlenet", "nin"):
        assert data[name][0.0] > 1.2 * data[name][1.0], name

    # always-partition pays on at least one network (deep top layers)
    worst = max(data[n][float("inf")] / data[n][1.0] for n in data)
    assert worst > 1.0
