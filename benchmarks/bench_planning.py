"""Planning-performance benchmark: cached-vs-uncached, serial-vs-parallel.

Times the three workloads the ``repro.perf`` subsystem accelerates and
writes ``BENCH_planning.json`` so the planning-speed trajectory is tracked
PR over PR:

1. **repeated plan** — the planning-service pattern: the same network is
   planned repeatedly (the oracle policy, the most expensive chooser).
   Compares N runs with the schedule cache off vs on.
2. **oracle search** — ``search_network`` over every conv layer, cache off
   vs on (VGG's repeated geometries hit even within a single cold search).
3. **multi-point sweep** — a DRAM-bandwidth sweep grid, serial vs
   ``--jobs``-style process-pool fan-out (honest numbers: on a single-core
   host the pool can lose to serial; the cache is the headline there).

Every scenario asserts cached/parallel totals are bit-identical to the
uncached/serial reference before reporting a speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_planning.py [--output BENCH_planning.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.adaptive.planner import plan_network
from repro.adaptive.search import search_network
from repro.analysis.sweeps import sweep_parameter
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import build
from repro.perf import schedule_cache

NETWORKS = ("alexnet", "vgg", "googlenet")
SWEEP_VALUES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


def _time(fn, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return time.perf_counter() - start


def bench_repeated_plan(net_name: str, repeats: int, policy: str = "oracle") -> dict:
    net = build(net_name)
    schedule_cache.configure(enabled=False)
    reference = plan_network(net, CONFIG_16_16, policy)
    uncached_s = _time(lambda: plan_network(net, CONFIG_16_16, policy), repeats)

    schedule_cache.configure(enabled=True)
    schedule_cache.clear()
    cached_s = _time(lambda: plan_network(net, CONFIG_16_16, policy), repeats)
    check = plan_network(net, CONFIG_16_16, policy)
    stats = schedule_cache.stats()
    assert check.total_cycles == reference.total_cycles, net_name
    assert check.buffer_accesses == reference.buffer_accesses, net_name
    assert check.dram_words == reference.dram_words, net_name
    return {
        "name": "repeated_plan",
        "network": net_name,
        "policy": policy,
        "repeats": repeats,
        "uncached_s": round(uncached_s, 6),
        "cached_s": round(cached_s, 6),
        "speedup": round(uncached_s / cached_s, 3),
        "bit_identical": True,
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": round(stats.hit_rate, 4),
            "evaluations_avoided": stats.evaluations_avoided,
        },
    }


def bench_oracle_search(net_name: str, repeats: int) -> dict:
    net = build(net_name)
    schedule_cache.configure(enabled=False)
    reference = search_network(net, CONFIG_16_16)
    uncached_s = _time(lambda: search_network(net, CONFIG_16_16), repeats)

    schedule_cache.configure(enabled=True)
    schedule_cache.clear()
    cached_s = _time(lambda: search_network(net, CONFIG_16_16), repeats)
    check = search_network(net, CONFIG_16_16)
    assert [(o.layer_name, o.scheme, o.cycles) for o in check] == [
        (o.layer_name, o.scheme, o.cycles) for o in reference
    ], net_name
    return {
        "name": "oracle_search",
        "network": net_name,
        "repeats": repeats,
        "uncached_s": round(uncached_s, 6),
        "cached_s": round(cached_s, 6),
        "speedup": round(uncached_s / cached_s, 3),
        "bit_identical": True,
    }


def bench_parallel_sweep(net_name: str, repeats: int, jobs: int) -> dict:
    net = build(net_name)
    schedule_cache.configure(enabled=True)

    def run(n_jobs):
        return sweep_parameter(
            net, CONFIG_16_16, "dram_words_per_cycle", SWEEP_VALUES, jobs=n_jobs
        )

    reference = run(1)
    serial_s = _time(lambda: run(1), repeats)
    parallel_s = _time(lambda: run(jobs), repeats)
    assert run(jobs) == reference, net_name
    return {
        "name": "parallel_sweep",
        "network": net_name,
        "grid_points": len(SWEEP_VALUES),
        "repeats": repeats,
        "jobs": jobs,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_planning.json")
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=-1, help="-1 = all CPUs")
    args = parser.parse_args(argv)

    jobs = os.cpu_count() or 1 if args.jobs < 0 else args.jobs
    scenarios = []
    for net_name in NETWORKS:
        scenarios.append(bench_repeated_plan(net_name, args.repeats))
        scenarios.append(bench_oracle_search(net_name, args.repeats))
    scenarios.append(bench_parallel_sweep("alexnet", max(1, args.repeats // 5), jobs))

    cache_speedups = [
        s["speedup"] for s in scenarios if s["name"] in ("repeated_plan", "oracle_search")
    ]
    parallel_speedups = [s["speedup"] for s in scenarios if s["name"] == "parallel_sweep"]
    payload = {
        "benchmark": "planning",
        "generated_by": "benchmarks/bench_planning.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "scenarios": scenarios,
        "headline": {
            "best_cache_speedup": max(cache_speedups),
            "best_parallel_speedup": max(parallel_speedups),
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"{'scenario':<16s} {'network':<10s} {'base s':>10s} {'new s':>10s} {'speedup':>8s}")
    for s in scenarios:
        base = s.get("uncached_s", s.get("serial_s"))
        new = s.get("cached_s", s.get("parallel_s"))
        print(f"{s['name']:<16s} {s['network']:<10s} {base:>10.4f} {new:>10.4f} {s['speedup']:>7.2f}x")
    print(f"\nwritten to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
