"""Ablation — DRAM bandwidth: where the compute/memory crossover sits.

The timing model overlaps compute with DMA (double buffering), so a layer
only slows down when its traffic divided by bandwidth exceeds its compute
cycles.  Sweeping the sustained DMA rate shows:

* at high bandwidth every network is compute-bound and extra bandwidth is
  worthless (cycles saturate at the pure-compute floor);
* at low bandwidth every network goes memory-bound (VGG's deep 3x3 layers
  have high arithmetic intensity, so its slowdown factor is milder than
  AlexNet's — but its conv1, with a 6.4 MB output, stays DMA-bound the
  longest);
* VGG needs at least as much bandwidth as AlexNet to reach its floor.
"""

import dataclasses

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import build

RATES = (0.5, 1, 2, 4, 8, 16, 32)  # words per cycle


def sweep(network_name: str):
    net = build(network_name)
    out = {}
    for rate in RATES:
        config = dataclasses.replace(CONFIG_16_16, dram_words_per_cycle=rate)
        run = plan_network(net, config, "adaptive-2")
        out[rate] = (run.total_cycles, run.compute_cycles)
    return out


def run():
    return {name: sweep(name) for name in ("alexnet", "vgg")}


def crossover_rate(data) -> float:
    """Smallest swept rate at which the network is within 5% of compute."""
    for rate in RATES:
        total, compute = data[rate]
        if total <= 1.05 * compute:
            return rate
    return float("inf")


def test_dram_bandwidth_ablation(benchmark, report):
    data = benchmark(run)

    rows = []
    for name, by_rate in data.items():
        rows.append(
            [name]
            + [f"{by_rate[r][0]:.4g}" for r in RATES]
            + [f"{by_rate[RATES[0]][1]:.4g}"]
        )
    report(
        "Ablation — DRAM bandwidth (adaptive-2, 16-16, total cycles)",
        format_table(
            ["network"] + [f"{r} w/cyc" for r in RATES] + ["compute floor"],
            rows,
        ),
    )

    for name, by_rate in data.items():
        # monotone: more bandwidth never slows anything down
        for small, big in zip(RATES, RATES[1:]):
            assert by_rate[big][0] <= by_rate[small][0] * 1.0001, (name, small)
        # saturation at the compute floor
        total32, compute = by_rate[32]
        assert total32 <= 1.05 * compute, name
        # starvation: at 0.5 w/cyc everything is memory-bound
        assert by_rate[0.5][0] > 1.3 * compute, name

    # VGG needs more bandwidth than AlexNet to become compute-bound
    assert crossover_rate(data["vgg"]) >= crossover_rate(data["alexnet"])
