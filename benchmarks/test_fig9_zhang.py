"""Fig. 9 — comparison with the Zhang FPGA'15 accelerator [14] at 100 MHz.

Paper numbers (ms): zhang-7,64 conv1/whole = 7.4 / 21.6; adpa-16-24 = 3.3 /
20.4-ish; adpa-16-28 = 3.3 / 18.1; adpa-16-32 = 2.5 / 14.9.  Speedups:
2.22x (conv1) and 1.20x (whole NN) at the matched 16-28 budget; 1.06x and
1.45x for the -24/-32 budgets.

Our model reproduces the zhang numbers to within ~8% and the speedup
crossover structure exactly: the adaptive design beats [14] at *fewer*
multipliers and the gap widens with the budget.
"""

import pytest

from repro.analysis.experiments import fig9_zhang_comparison
from repro.analysis.report import render_fig9


def run():
    return fig9_zhang_comparison()


def test_fig9(benchmark, report):
    rows = benchmark(run)
    report("Fig. 9 — vs Zhang FPGA'15", render_fig9(rows))

    by_design = {r.design: r for r in rows}
    zhang = by_design["zhang-7,64"]

    # the baseline model itself matches the published plot
    assert zhang.conv1_ms == pytest.approx(7.4, rel=0.08)
    assert zhang.whole_ms == pytest.approx(21.6, rel=0.10)

    # conv1: ~2.2x at the matched budget
    s_conv1 = zhang.conv1_ms / by_design["adpa-16-28"].conv1_ms
    assert 1.8 < s_conv1 < 2.7

    # whole network: ~1.2x at matched, ~1.06x at -14%, ~1.45x at +14%
    s24 = zhang.whole_ms / by_design["adpa-16-24"].whole_ms
    s28 = zhang.whole_ms / by_design["adpa-16-28"].whole_ms
    s32 = zhang.whole_ms / by_design["adpa-16-32"].whole_ms
    assert s24 > 1.0  # wins even with fewer multipliers
    assert 1.05 < s28 < 1.45
    assert s32 > s28 > s24  # monotone in the multiplier budget
