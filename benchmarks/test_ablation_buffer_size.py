"""Ablation — on-chip buffer capacity, per policy.

The paper motivates adaptivity partly through memory behaviour: the
adaptive plan streams every layer in the layout its scheme wants, while
the unrolled intra-kernel realization inflates the input by Eq. 1's factor
and cannot strip-tile it.  Sweeping the input/output buffer capacity from
0.5 MB to 16 MB on VGG (whose unrolled bottom layers reach ~14 MB) makes
that difference measurable:

* **adaptive-2 is buffer-robust** — spatial strip tiling with (k-s)-row
  halos keeps spill traffic negligible, so capacity changes move VGG by
  <5% across the whole sweep (Table 3's 2 MB is comfortably enough at the
  default DMA bandwidth);
* **fixed intra is buffer-hungry** — the non-resident fraction of the
  unrolled stream re-fetches on every output-chunk pass, so VGG under
  intra degrades steeply as buffers shrink and keeps improving all the
  way to 16 MB.

This is the quantitative backing for choosing schemes whose access
patterns tile, rather than buying bigger SRAMs.
"""

import dataclasses

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import build

MB = 1024 * 1024
SIZES_MB = (0.5, 1, 2, 4, 8, 16)


def sweep(network_name: str, policy: str):
    net = build(network_name)
    cycles = {}
    for size_mb in SIZES_MB:
        config = dataclasses.replace(
            CONFIG_16_16,
            input_buffer_bytes=int(size_mb * MB),
            output_buffer_bytes=int(size_mb * MB),
        )
        cycles[size_mb] = plan_network(net, config, policy).total_cycles
    return cycles


def run():
    return {
        ("vgg", "adaptive-2"): sweep("vgg", "adaptive-2"),
        ("vgg", "intra"): sweep("vgg", "intra"),
        ("alexnet", "adaptive-2"): sweep("alexnet", "adaptive-2"),
        ("alexnet", "intra"): sweep("alexnet", "intra"),
    }


def test_buffer_size_ablation(benchmark, report):
    data = benchmark(run)

    rows = [
        [f"{net} / {policy}"] + [f"{vals[s]:.4g}" for s in SIZES_MB]
        for (net, policy), vals in data.items()
    ]
    report(
        "Ablation — input/output buffer capacity (16-16, cycles)",
        format_table(["network / policy"] + [f"{s} MB" for s in SIZES_MB], rows),
    )

    for vals in data.values():
        # more buffer never hurts
        for small, big in zip(SIZES_MB, SIZES_MB[1:]):
            assert vals[big] <= vals[small] * 1.0001, (small, big)

    # the adaptive plan is buffer-robust on both networks
    for net in ("vgg", "alexnet"):
        vals = data[(net, "adaptive-2")]
        assert vals[0.5] / vals[16] < 1.05, net

    # fixed intra on VGG is buffer-hungry: steep degradation when starved...
    intra_vgg = data[("vgg", "intra")]
    assert intra_vgg[0.5] / intra_vgg[16] > 2.0
    # ...and still leaving >20% on the table at Table 3's 2 MB
    assert intra_vgg[2] / intra_vgg[16] > 1.2

    # AlexNet's unrolled tensors are ~1-2 MB: intra is sensitive only below 2 MB
    intra_anet = data[("alexnet", "intra")]
    assert intra_anet[0.5] / intra_anet[2] > 1.1
    assert intra_anet[4] / intra_anet[16] < 1.05
