"""Sharding benchmark: multi-chip scaling curves for AlexNet and VGG.

For each network and chip count the script plans

1. **pipeline/dp** — the optimal DP layer-pipeline balancer;
2. **pipeline/even** — the naive even-by-count baseline it must beat;
3. **data-parallel** — batch-sharded replication (global batch = 2 images
   per chip) plus its free-link limit (infinite bandwidth, zero latency),
   which bounds how much of the efficiency loss is the interconnect vs
   lost weight amortization at smaller shards.

Writes ``BENCH_sharding.json``.  The headline asserts the structural
claims — the DP balancer's bottleneck (compute + link) is never worse than
the even split, and free-link data parallelism reaches N× the single-chip
throughput at the same shard size — and the script exits nonzero if either
fails.  All numbers are modelled accelerator time: reruns are
byte-deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py [--smoke] [--output BENCH_sharding.json]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.cluster import LinkSpec, plan_data_parallel, plan_pipeline
from repro.nn.zoo import build

NETWORKS = ("alexnet", "vgg")
FULL_CHIPS = (1, 2, 4, 8)
SMOKE_CHIPS = (1, 2, 4)
LINK = LinkSpec(bandwidth_gbs=25.0, latency_s=1e-6)
FREE_LINK = LinkSpec(bandwidth_gbs=math.inf, latency_s=0.0)
IMAGES_PER_CHIP = 2


def measure(network: str, chips: int) -> dict:
    net = build(network)
    dp_pipe = plan_pipeline(net, CONFIG_16_16, chips, link=LINK, strategy="dp")
    even_pipe = plan_pipeline(net, CONFIG_16_16, chips, link=LINK, strategy="even")
    batch = IMAGES_PER_CHIP * chips
    dpar = plan_data_parallel(net, CONFIG_16_16, chips, link=LINK, batch_size=batch)
    dpar_free = plan_data_parallel(
        net, CONFIG_16_16, chips, link=FREE_LINK, batch_size=batch
    )
    # free-link N-chip throughput over one chip at the same shard size:
    # the interconnect-less scaling limit, N by construction
    shard = plan_data_parallel(net, CONFIG_16_16, 1, link=FREE_LINK,
                               batch_size=IMAGES_PER_CHIP)
    return {
        "network": network,
        "chips": chips,
        "pipeline_dp_bottleneck_ms": round(dp_pipe.bottleneck_s * 1e3, 6),
        "pipeline_even_bottleneck_ms": round(even_pipe.bottleneck_s * 1e3, 6),
        "pipeline_dp_throughput_ips": round(dp_pipe.throughput_ips, 3),
        "pipeline_fill_ms": round(dp_pipe.fill_latency_s * 1e3, 6),
        "pipeline_dp_beats_even": dp_pipe.bottleneck_s <= even_pipe.bottleneck_s,
        "dataparallel_batch": batch,
        "dataparallel_throughput_ips": round(dpar.throughput_ips, 3),
        "dataparallel_speedup": round(dpar.speedup, 4),
        "dataparallel_efficiency": round(dpar.efficiency, 4),
        "dataparallel_free_link_throughput_ips": round(dpar_free.throughput_ips, 3),
        "dataparallel_free_link_scaling": round(
            dpar_free.throughput_ips / shard.throughput_ips, 4
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_sharding.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small chip grid (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    chip_counts = SMOKE_CHIPS if args.smoke else FULL_CHIPS
    rows = [measure(net, chips) for net in NETWORKS for chips in chip_counts]

    dp_always_wins = all(r["pipeline_dp_beats_even"] for r in rows)
    free_link_scales = all(
        abs(r["dataparallel_free_link_scaling"] - r["chips"]) < 1e-3 * r["chips"]
        for r in rows
    )
    best = {
        net: max(
            (r for r in rows if r["network"] == net),
            key=lambda r: r["pipeline_even_bottleneck_ms"]
            / r["pipeline_dp_bottleneck_ms"],
        )
        for net in NETWORKS
    }
    headline = {
        "dp_balancer_never_worse_than_even": dp_always_wins,
        "free_link_data_parallel_scales_nx": free_link_scales,
        "best_dp_vs_even": {
            net: {
                "chips": r["chips"],
                "even_ms": r["pipeline_even_bottleneck_ms"],
                "dp_ms": r["pipeline_dp_bottleneck_ms"],
                "ratio": round(
                    r["pipeline_even_bottleneck_ms"]
                    / r["pipeline_dp_bottleneck_ms"],
                    3,
                ),
            }
            for net, r in best.items()
        },
    }

    payload = {
        "benchmark": "sharding",
        "generated_by": "benchmarks/bench_sharding.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "link_gbs": LINK.bandwidth_gbs,
        "link_latency_us": LINK.latency_s * 1e6,
        "images_per_chip": IMAGES_PER_CHIP,
        "smoke": args.smoke,
        "scenarios": rows,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"{'net':<8s} {'chips':>5s} {'dp ms':>9s} {'even ms':>9s} "
        f"{'pipe img/s':>10s} {'dpar x':>7s} {'dpar eff':>8s} {'free x':>7s}"
    )
    for r in rows:
        print(
            f"{r['network']:<8s} {r['chips']:>5d} "
            f"{r['pipeline_dp_bottleneck_ms']:>9.3f} "
            f"{r['pipeline_even_bottleneck_ms']:>9.3f} "
            f"{r['pipeline_dp_throughput_ips']:>10.1f} "
            f"{r['dataparallel_speedup']:>7.2f} "
            f"{r['dataparallel_efficiency']:>8.1%} "
            f"{r['dataparallel_free_link_scaling']:>7.2f}"
        )
    ok = True
    if not dp_always_wins:
        print("FAIL: DP balancer lost to the even split somewhere", file=sys.stderr)
        ok = False
    if not free_link_scales:
        print(
            "FAIL: free-link data parallelism did not reach N x shard throughput",
            file=sys.stderr,
        )
        ok = False
    print(f"written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
