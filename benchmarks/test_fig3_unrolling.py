"""Fig. 3 — data-unrolling footprint of the first conv layers.

Paper claim: "the unrolled data size increases to 9x~18.9x of the raw
input" for the first five conv layers of AlexNet and GoogLeNet.  Our
Eq. 1 implementation includes the padding-aware output size, which widens
the band slightly (7x-25x); the qualitative claim — roughly an order of
magnitude of duplication — is asserted.
"""

from repro.analysis.experiments import fig3_unrolling
from repro.analysis.report import render_fig3


def run():
    return fig3_unrolling()


def test_fig3(benchmark, report):
    rows = benchmark(run)
    report("Fig. 3 — data unrolling scheme", render_fig3(rows))

    assert len(rows) == 10
    for row in rows:
        assert 5.0 < row.factor < 30.0, row
    # conv1 of AlexNet (k=11, s=4) duplicates ~7x; the stride-1 5x5 layers
    # are the worst at ~25x
    by_layer = {(r.network, r.layer): r.factor for r in rows}
    assert by_layer[("alexnet", "conv1")] < by_layer[("alexnet", "conv2")]
    # every stride-1 3x3 layer lands at exactly ~9x (k/s)^2
    assert 8.5 < by_layer[("alexnet", "conv3")] < 9.5
