"""Serving benchmark: throughput vs offered load, batch-1 vs dynamic batching.

Sweeps the offered Poisson load on an FC-heavy network (AlexNet, whose
batch-1 forward pass is DMA-bound on the FC weight streams) and serves it
two ways at every rate:

1. **batch-1** — one request per accelerator occupancy, the paper's
   single-image regime;
2. **dynamic** — max-batch + max-wait batching, which amortizes the FC
   weight DMA across the backlog.

Writes ``BENCH_serving.json``.  The headline records the saturating-load
comparison (offered load above batch-1 capacity): dynamic batching must
beat batch-1 on p95 latency there, and the script exits nonzero if it
doesn't.  All numbers are *simulated* accelerator time, so the artifact is
deterministic — reruns produce identical measurements.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--output BENCH_serving.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.serve import (
    BatchCoster,
    BatchPolicy,
    QueuePolicy,
    ServingEngine,
    parse_mix,
    poisson_arrivals,
)

NETWORK = "alexnet"
SATURATING_RATE = 100.0  # above batch-1 capacity (~56 req/s), below dynamic's
FULL_RATES = (25.0, 50.0, 75.0, 100.0, 150.0, 200.0)
QUICK_RATES = (50.0, 100.0, 200.0)

POLICIES = {
    "batch-1": BatchPolicy(max_batch=1),
    "dynamic": BatchPolicy(max_batch=16, max_wait_ms=10.0),
}


def serve_once(
    coster: BatchCoster,
    rate: float,
    duration_s: float,
    policy_name: str,
    seed: int = 0,
) -> dict:
    tenants = parse_mix(NETWORK)
    requests = poisson_arrivals(rate, duration_s, tenants, seed=seed)
    engine = ServingEngine(
        CONFIG_16_16,
        batch_policy=POLICIES[policy_name],
        queue_policy=QueuePolicy(max_depth=256),
        coster=coster,
    )
    summary = engine.run(requests, duration_s).summary
    return {
        "rate_rps": rate,
        "policy": policy_name,
        "offered": summary["offered"],
        "completed": summary["completed"],
        "shed_rate": summary["shed_rate"],
        "goodput_rps": summary["goodput_rps"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": summary["latency_ms"]["p50"],
        "p95_ms": summary["latency_ms"]["p95"],
        "p99_ms": summary["latency_ms"]["p99"],
        "queue_wait_p95_ms": summary["queue_wait_ms"]["p95"],
        "mean_batch_size": summary["mean_batch_size"],
        "utilization": summary["utilization"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serving.json")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid + short duration (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    duration = 3.0 if args.quick else args.duration
    rates = QUICK_RATES if args.quick else FULL_RATES
    coster = BatchCoster(CONFIG_16_16)

    scenarios = []
    for rate in rates:
        for policy_name in POLICIES:
            scenarios.append(
                serve_once(coster, rate, duration, policy_name, seed=args.seed)
            )

    def pick(rate, policy):
        for s in scenarios:
            if s["rate_rps"] == rate and s["policy"] == policy:
                return s
        raise KeyError((rate, policy))

    b1 = pick(SATURATING_RATE, "batch-1")
    dyn = pick(SATURATING_RATE, "dynamic")
    headline = {
        "network": NETWORK,
        "saturating_rate_rps": SATURATING_RATE,
        "batch1_capacity_rps": round(coster.capacity_rps(NETWORK, 1), 3),
        "dynamic_capacity_rps": round(
            coster.capacity_rps(NETWORK, POLICIES["dynamic"].max_batch), 3
        ),
        "batch1_p95_ms": b1["p95_ms"],
        "dynamic_p95_ms": dyn["p95_ms"],
        "p95_speedup": round(b1["p95_ms"] / dyn["p95_ms"], 3),
        "batch1_goodput_rps": b1["goodput_rps"],
        "dynamic_goodput_rps": dyn["goodput_rps"],
        "dynamic_beats_batch1_p95": dyn["p95_ms"] < b1["p95_ms"],
    }

    payload = {
        "benchmark": "serving",
        "generated_by": "benchmarks/bench_serving.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "network": NETWORK,
        "config": CONFIG_16_16.name,
        "duration_s": duration,
        "seed": args.seed,
        "quick": args.quick,
        "policies": {name: p.describe() for name, p in POLICIES.items()},
        "scenarios": scenarios,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"{'rate':>6s} {'policy':<8s} {'goodput':>8s} {'p50 ms':>9s} "
        f"{'p95 ms':>9s} {'p99 ms':>9s} {'shed':>6s} {'batch':>6s}"
    )
    for s in scenarios:
        print(
            f"{s['rate_rps']:>6.0f} {s['policy']:<8s} {s['goodput_rps']:>8.1f} "
            f"{s['p50_ms']:>9.1f} {s['p95_ms']:>9.1f} {s['p99_ms']:>9.1f} "
            f"{s['shed_rate']:>6.1%} {s['mean_batch_size']:>6.2f}"
        )
    print(
        f"\nheadline @ {SATURATING_RATE:.0f} req/s: dynamic p95 "
        f"{headline['dynamic_p95_ms']:.1f} ms vs batch-1 p95 "
        f"{headline['batch1_p95_ms']:.1f} ms "
        f"({headline['p95_speedup']:.1f}x better)"
    )
    print(f"written to {args.output}")
    if not headline["dynamic_beats_batch1_p95"]:
        print("FAIL: dynamic batching did not beat batch-1 p95", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
