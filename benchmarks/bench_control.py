"""Autoscaling benchmark: closed-loop control vs static provisioning.

Serves a seeded multi-day diurnal workload with flash crowds (a vgg-heavy
tenant mix, so a handful of req/s already needs several chips) three ways:

1. **autoscaled** — the :mod:`repro.control` loop starts at one replica and
   drives fleet size, batcher knobs and drain/repair from windowed
   telemetry;
2. **static mean** — a fixed fleet sized for the mean arrival rate;
3. **static peak** — a fixed fleet sized for the instantaneous crest rate
   (mid-day sinusoid times the largest flash factor).

Writes ``BENCH_control.json``.  The headline records the autoscaling
trade both baselines miss: SLO attainment at least the mean fleet's while
spending fewer chip-seconds than the peak fleet.  The script exits nonzero
if either side of that trade fails, or if two runs of the control loop do
not produce byte-identical decisions logs.  All numbers are *simulated*
accelerator time, so the artifact is deterministic across reruns.

Usage::

    PYTHONPATH=src python benchmarks/bench_control.py [--smoke] [--output BENCH_control.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.control import (
    AutoscalePolicy,
    ControlLoop,
    VerifierPolicy,
    run_static,
    static_fleet_sizes,
)
from repro.serve import (
    BatchCoster,
    BatchPolicy,
    QueuePolicy,
    diurnal_arrivals,
    parse_mix,
)
from repro.serve.metrics import to_json

MIX = "vgg:3,alexnet:1"
SLO_MS = 600.0
BASE_RATE = 6.0
PEAK_RATE = 42.0
MAX_BATCH = 16
MAX_WAIT_MS = 10.0

#: (start as a fraction of the run, duration in day-fractions, factor)
FLASHES = ((0.55, 0.08, 2.5), (1.30, 0.10, 2.0), (2.75, 0.08, 3.0))


def build_workload(days: float, day_s: float, seed: int, tenants):
    flash = [
        (start * day_s, dur * day_s, factor)
        for start, dur, factor in FLASHES
        if start < days
    ]
    requests = diurnal_arrivals(
        BASE_RATE,
        PEAK_RATE,
        days,
        tenants,
        seed=seed,
        day_s=day_s,
        flash_crowds=flash,
        churn=0.25,
    )
    return requests, days * day_s, flash


def run_autoscaled(coster, tenants, requests, duration, seed):
    loop = ControlLoop(
        CONFIG_16_16,
        tenants,
        autoscale=AutoscalePolicy(epoch_s=2.0, max_replicas=12),
        verifier=VerifierPolicy(),
        batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS),
        queue_policy=QueuePolicy(max_depth=256),
        replicas=1,
        coster=coster,
    )
    return loop.run(requests, duration, extra_meta={"seed": seed})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_control.json")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--days", type=float, default=3.0)
    parser.add_argument(
        "--day-s", type=float, default=100.0, help="seconds per simulated day"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short two-day run (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    days = 2.0 if args.smoke else args.days
    day_s = 60.0 if args.smoke else args.day_s
    tenants = parse_mix(MIX, slo_ms=SLO_MS)
    coster = BatchCoster(CONFIG_16_16)
    requests, duration, flash = build_workload(days, day_s, args.seed, tenants)

    auto = run_autoscaled(coster, tenants, requests, duration, args.seed)
    rerun = run_autoscaled(coster, tenants, requests, duration, args.seed)
    deterministic = auto.to_json() == rerun.to_json()

    mean_rate = len(requests) / duration
    peak_inst = PEAK_RATE * max([1.0] + [f for _, _, f in flash])
    mean_n, peak_n = static_fleet_sizes(
        coster, tenants, mean_rate, peak_inst, MAX_BATCH
    )
    baselines = {}
    for name, replicas in (("static_mean", mean_n), ("static_peak", peak_n)):
        report, chip = run_static(
            CONFIG_16_16,
            requests,
            duration,
            replicas,
            batch_policy=BatchPolicy(max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS),
            queue_policy=QueuePolicy(max_depth=256),
            coster=coster,
        )
        baselines[name] = {
            "replicas": replicas,
            "slo_attainment": report.summary["deadline_hit_rate"],
            "shed": report.summary["shed"],
            "p95_ms": report.summary["latency_ms"]["p95"],
            "chip_seconds": round(chip, 6),
        }

    control = auto.summary["control"]
    headline = {
        "mix": MIX,
        "slo_ms": SLO_MS,
        "requests": len(requests),
        "mean_rate_rps": round(mean_rate, 3),
        "peak_instantaneous_rps": round(peak_inst, 3),
        "autoscaler_slo_attainment": auto.slo_attainment,
        "static_mean_slo_attainment": baselines["static_mean"]["slo_attainment"],
        "autoscaler_chip_seconds": round(auto.chip_seconds, 6),
        "static_peak_chip_seconds": baselines["static_peak"]["chip_seconds"],
        "chip_seconds_saved_vs_peak": round(
            baselines["static_peak"]["chip_seconds"] - auto.chip_seconds, 6
        ),
        "peak_replicas": auto.summary["fleet"]["peak_replicas"],
        "actions_by_kind": control["actions_by_kind"],
        "oscillation_freezes": len(control["freezes"]),
        "failed_verifications": control["verdicts_by_status"].get("failed", 0),
        "decisions_log_deterministic": deterministic,
        "attainment_not_worse_than_mean": (
            auto.slo_attainment
            >= baselines["static_mean"]["slo_attainment"]
        ),
        "cheaper_than_peak": (
            auto.chip_seconds < baselines["static_peak"]["chip_seconds"]
        ),
    }

    payload = {
        "benchmark": "control",
        "generated_by": "benchmarks/bench_control.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "seed": args.seed,
        "smoke": args.smoke,
        "days": days,
        "day_s": day_s,
        "flash_crowds": [list(f) for f in flash],
        "autoscaler": {
            "policy": control["policy"],
            "verifier": control["verifier"],
            "slo_attainment": auto.slo_attainment,
            "shed": auto.summary["shed"],
            "p95_ms": auto.summary["latency_ms"]["p95"],
            "chip_seconds": round(auto.chip_seconds, 6),
            "fleet": auto.summary["fleet"],
            "n_epochs": control["n_epochs"],
            "actions_by_kind": control["actions_by_kind"],
            "verdicts_by_status": control["verdicts_by_status"],
            "freezes": control["freezes"],
        },
        "baselines": baselines,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        handle.write(to_json(payload))

    print(
        f"{'fleet':<13s} {'replicas':>8s} {'attainment':>11s} {'shed':>6s} "
        f"{'p95 ms':>9s} {'chip-s':>10s}"
    )
    rows = [
        (
            "autoscaled",
            f"1->{auto.summary['fleet']['peak_replicas']}",
            auto.slo_attainment,
            auto.summary["shed"],
            auto.summary["latency_ms"]["p95"],
            auto.chip_seconds,
        )
    ] + [
        (
            name,
            str(stats["replicas"]),
            stats["slo_attainment"],
            stats["shed"],
            stats["p95_ms"],
            stats["chip_seconds"],
        )
        for name, stats in baselines.items()
    ]
    for name, replicas, attain, shed, p95, chip in rows:
        print(
            f"{name:<13s} {replicas:>8s} {attain:>11.4f} {shed:>6d} "
            f"{p95:>9.1f} {chip:>10.1f}"
        )
    print(
        f"\nheadline: attainment {headline['autoscaler_slo_attainment']:.4f} vs "
        f"mean fleet's {headline['static_mean_slo_attainment']:.4f}; "
        f"chip-seconds {headline['autoscaler_chip_seconds']:.1f} vs peak "
        f"fleet's {headline['static_peak_chip_seconds']:.1f} "
        f"({headline['chip_seconds_saved_vs_peak']:.1f} saved)"
    )
    print(f"written to {args.output}")

    ok = True
    if not headline["decisions_log_deterministic"]:
        print("FAIL: decisions log differed between identical runs", file=sys.stderr)
        ok = False
    if not headline["attainment_not_worse_than_mean"]:
        print(
            "FAIL: autoscaler SLO attainment below the static mean fleet",
            file=sys.stderr,
        )
        ok = False
    if not headline["cheaper_than_peak"]:
        print(
            "FAIL: autoscaler spent more chip-seconds than the static peak fleet",
            file=sys.stderr,
        )
        ok = False
    if headline["failed_verifications"]:
        print("FAIL: some actions missed their verification deadline", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
