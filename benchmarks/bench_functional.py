"""Functional-simulator benchmark: vector (im2col/GEMM) vs loop backend.

Times every conv path of :mod:`repro.sim.functional` — reference, im2col,
partition, inter-improved — plus the ABFT verified convolution, on the
integrity-sweep layer shapes, under both backends, and writes
``BENCH_functional.json`` so the vectorization trajectory is tracked PR
over PR.

Before any timing is trusted, every (shape, path) cell asserts the vector
output is **bit-identical** to the loop oracle in the int64 code domain
(exact integer equality, not allclose), and the full integrity-sweep
rollup is re-run under both backends and compared byte-for-byte (modulo
the recorded backend name).  The headline asserts:

1. **bit_identical** — all vector outputs, ABFT checksums and recovered
   outputs equal the loop oracle's, bit for bit;
2. **sweep_rollup_identical** — ``run_sweep`` produces the same rollup
   JSON under both backends;
3. **vector_speedup_10x** (full runs only) — the aggregate conv-path
   speedup on the sweep shapes is at least 10x (timing gates are skipped
   in ``--smoke`` so shared CI runners cannot flake the job).

Usage::

    PYTHONPATH=src python benchmarks/bench_functional.py [--smoke] [--output BENCH_functional.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.arch.config import CONFIG_16_16
from repro.integrity.abft import (
    golden_codes,
    predicted_checksums,
    quantize_conv_operands,
    verified_conv,
)
from repro.integrity.sweep import SWEEP_LAYERS, run_sweep, sweep_to_json
from repro.nn.layers import ConvLayer, TensorShape
from repro.sim.backend import use_backend
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    random_conv_tensors,
    reference_conv,
)

SEED = 0

#: the timed conv paths; every one takes (data, weights, bias, stride, pad, groups)
PATHS = (
    ("reference", reference_conv),
    ("im2col", conv_via_im2col),
    ("partition", conv_via_partition),
    ("inter", conv_via_inter_improved),
)

SPEEDUP_GATE = 10.0


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall-clock seconds for one call (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _layer_operands(spec, seed: int):
    name, k, s, pad, groups, din, dout, hw = spec
    layer = ConvLayer(
        name, in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad, groups=groups
    )
    data, weights, bias = random_conv_tensors(layer, TensorShape(din, hw, hw), seed=seed)
    data_codes, weight_codes, bias_codes = quantize_conv_operands(data, weights, bias)
    return data_codes, weight_codes, bias_codes, s, pad, groups


def bench_conv_paths(smoke: bool, repeats: int) -> dict:
    """Time + bit-check every (sweep shape, conv path) cell on both backends."""
    specs = SWEEP_LAYERS[:3] if smoke else SWEEP_LAYERS
    shapes = []
    mismatches = []
    loop_total = 0.0
    vector_total = 0.0
    for li, spec in enumerate(specs):
        codes = _layer_operands(spec, SEED * 1009 + li)
        data_codes, weight_codes, bias_codes, s, pad, groups = codes
        cells = {}
        for path_name, fn in PATHS:
            call = lambda backend: fn(  # noqa: E731 - tiny timing closure
                data_codes,
                weight_codes,
                bias_codes,
                stride=s,
                pad=pad,
                groups=groups,
                backend=backend,
            )
            loop_out = call("loop")
            vector_out = call("vector")
            identical = bool(np.array_equal(loop_out, vector_out))
            if not identical:
                mismatches.append(f"{spec[0]}/{path_name}")
            loop_s = _best_of(lambda: call("loop"), repeats)
            vector_s = _best_of(lambda: call("vector"), repeats)
            loop_total += loop_s
            vector_total += vector_s
            cells[path_name] = {
                "bit_identical": identical,
                "loop_ms": round(loop_s * 1e3, 4),
                "vector_ms": round(vector_s * 1e3, 4),
                "speedup": round(loop_s / vector_s, 2) if vector_s else None,
            }
        shapes.append(
            {
                "name": spec[0],
                "kernel": spec[1],
                "stride": spec[2],
                "pad": spec[3],
                "groups": spec[4],
                "in_maps": spec[5],
                "out_maps": spec[6],
                "hw": spec[7],
                "paths": cells,
            }
        )
    return {
        "shapes": shapes,
        "mismatches": mismatches,
        "loop_total_ms": round(loop_total * 1e3, 4),
        "vector_total_ms": round(vector_total * 1e3, 4),
        "speedup_total": round(loop_total / vector_total, 2) if vector_total else None,
    }


def bench_abft(smoke: bool, repeats: int) -> dict:
    """Time + bit-check the ABFT predict/verify pipeline on both backends."""
    specs = SWEEP_LAYERS[:3] if smoke else SWEEP_LAYERS
    mismatches = []
    loop_total = 0.0
    vector_total = 0.0
    rows = []
    for li, spec in enumerate(specs):
        codes = _layer_operands(spec, SEED * 1009 + li)
        data_codes, weight_codes, bias_codes, s, pad, groups = codes

        def run(backend):
            checks = predicted_checksums(
                data_codes, weight_codes, bias_codes, s, pad, groups, backend
            )
            verified = verified_conv(
                data_codes,
                weight_codes,
                bias_codes,
                stride=s,
                pad=pad,
                groups=groups,
                path="partition",
                backend=backend,
            )
            golden = golden_codes(
                data_codes,
                weight_codes,
                bias_codes,
                stride=s,
                pad=pad,
                groups=groups,
                backend=backend,
            )
            return checks, verified, golden

        loop_checks, loop_verified, loop_golden = run("loop")
        vec_checks, vec_verified, vec_golden = run("vector")
        identical = (
            np.array_equal(loop_checks.row, vec_checks.row)
            and np.array_equal(loop_checks.col, vec_checks.col)
            and np.array_equal(loop_checks.total, vec_checks.total)
            and np.array_equal(loop_verified.output, vec_verified.output)
            and np.array_equal(loop_golden, vec_golden)
        )
        if not identical:
            mismatches.append(spec[0])
        loop_s = _best_of(lambda: run("loop"), repeats)
        vector_s = _best_of(lambda: run("vector"), repeats)
        loop_total += loop_s
        vector_total += vector_s
        rows.append(
            {
                "name": spec[0],
                "bit_identical": bool(identical),
                "loop_ms": round(loop_s * 1e3, 4),
                "vector_ms": round(vector_s * 1e3, 4),
                "speedup": round(loop_s / vector_s, 2) if vector_s else None,
            }
        )
    return {
        "layers": rows,
        "mismatches": mismatches,
        "loop_total_ms": round(loop_total * 1e3, 4),
        "vector_total_ms": round(vector_total * 1e3, 4),
        "speedup_total": round(loop_total / vector_total, 2) if vector_total else None,
    }


def bench_sweep(smoke: bool) -> dict:
    """End-to-end integrity sweep under both backends; rollups must match."""
    with use_backend("loop"):
        start = time.perf_counter()
        loop_rollup = run_sweep(seed=SEED, smoke=smoke, config=CONFIG_16_16)
        loop_s = time.perf_counter() - start
    with use_backend("vector"):
        start = time.perf_counter()
        vector_rollup = run_sweep(seed=SEED, smoke=smoke, config=CONFIG_16_16)
        vector_s = time.perf_counter() - start
    # the only permitted difference is the recorded backend name
    loop_cmp = dict(loop_rollup, backend="vector")
    identical = sweep_to_json(loop_cmp) == sweep_to_json(vector_rollup)
    return {
        "rollup_identical": bool(identical),
        "loop_s": round(loop_s, 4),
        "vector_s": round(vector_s, 4),
        "speedup": round(loop_s / vector_s, 2) if vector_s else None,
        "headline": vector_rollup["headline"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_functional.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced shape grid, fewer repeats, no timing gate (CI)",
    )
    parser.add_argument("--repeats", type=int, default=0, help="0 = auto")
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 10)

    conv = bench_conv_paths(args.smoke, repeats)
    abft = bench_abft(args.smoke, repeats)
    sweep = bench_sweep(args.smoke)

    bit_identical = not conv["mismatches"] and not abft["mismatches"]
    headline = {
        "bit_identical": bit_identical,
        "sweep_rollup_identical": sweep["rollup_identical"],
        "conv_speedup_total": conv["speedup_total"],
        "abft_speedup_total": abft["speedup_total"],
        "sweep_speedup": sweep["speedup"],
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": not args.smoke,
        "vector_speedup_10x": (
            conv["speedup_total"] is not None
            and conv["speedup_total"] >= SPEEDUP_GATE
        ),
    }

    payload = {
        "benchmark": "functional",
        "generated_by": "benchmarks/bench_functional.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "seed": SEED,
        "smoke": args.smoke,
        "repeats": repeats,
        "conv_paths": conv,
        "abft": abft,
        "sweep": sweep,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"{'shape':<16s} {'path':<10s} {'loop ms':>9s} {'vector ms':>10s} {'speedup':>8s}")
    for shape in conv["shapes"]:
        for path_name, cell in shape["paths"].items():
            flag = "" if cell["bit_identical"] else "  MISMATCH"
            print(
                f"{shape['name']:<16s} {path_name:<10s} {cell['loop_ms']:>9.3f} "
                f"{cell['vector_ms']:>10.3f} {cell['speedup']:>7.1f}x{flag}"
            )
    print(
        f"conv paths total: {conv['loop_total_ms']:.2f} ms loop -> "
        f"{conv['vector_total_ms']:.2f} ms vector = {conv['speedup_total']:.1f}x; "
        f"abft {abft['speedup_total']:.1f}x; "
        f"sweep end-to-end {sweep['speedup']:.1f}x"
    )

    ok = True
    if not bit_identical:
        print(
            "FAIL: vector/loop mismatch in "
            + ", ".join(conv["mismatches"] + abft["mismatches"]),
            file=sys.stderr,
        )
        ok = False
    if not sweep["rollup_identical"]:
        print("FAIL: sweep rollups differ across backends", file=sys.stderr)
        ok = False
    if not args.smoke and not headline["vector_speedup_10x"]:
        print(
            f"FAIL: conv-path speedup {conv['speedup_total']}x < {SPEEDUP_GATE}x",
            file=sys.stderr,
        )
        ok = False
    print(f"written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
