"""Ablation (extension) — does performance-optimal equal energy-optimal?

The paper asserts its dynamic scheme "can optimize performance and minimize
energy consuming simultaneously".  This ablation makes that claim precise:
it runs the exhaustive per-layer oracle under three objectives (cycles,
energy, energy-delay product) on every benchmark network and compares the
resulting whole-network cycle and energy totals:

* the energy-oracle's cycles stay within a few percent of the cycle-oracle
  (and vice versa for energy) — performance- and energy-optimality really
  do coincide on these workloads, because both are dominated by the same
  utilization/traffic effects;
* the EDP oracle is sandwiched between the two by construction.
"""

from repro.adaptive.search import layer_energy_pj, search_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.arch.energy import EnergyModel
from repro.nn.zoo import benchmark_networks

OBJECTIVES = ("cycles", "energy", "edp")


def run():
    config = CONFIG_16_16
    model = EnergyModel(config)
    data = {}
    for net in benchmark_networks():
        per_objective = {}
        for objective in OBJECTIVES:
            outcomes = search_network(net, config, objective=objective)
            cycles = sum(o.result.total_cycles for o in outcomes)
            energy = sum(layer_energy_pj(o.result, model) for o in outcomes)
            per_objective[objective] = (cycles, energy)
        data[net.name] = per_objective
    return data


def test_energy_objective_ablation(benchmark, report):
    data = benchmark(run)

    rows = []
    for name, per_obj in data.items():
        for objective in OBJECTIVES:
            cycles, energy = per_obj[objective]
            rows.append(
                [name, objective, f"{cycles:.4g}", f"{energy / 1e6:.4g}"]
            )
    report(
        "Ablation — oracle objective (cycles vs energy vs EDP, 16-16)",
        format_table(["network", "objective", "cycles", "energy (uJ)"], rows),
    )

    for name, per_obj in data.items():
        cyc_cycles, cyc_energy = per_obj["cycles"]
        en_cycles, en_energy = per_obj["energy"]
        edp_cycles, edp_energy = per_obj["edp"]

        # each oracle wins its own metric (tautology, but guards the search)
        assert cyc_cycles <= en_cycles * 1.0001, name
        assert en_energy <= cyc_energy * 1.0001, name

        # the paper's 'simultaneously': the cross penalties are small
        assert en_cycles <= 1.10 * cyc_cycles, name
        assert cyc_energy <= 1.15 * en_energy, name

        # EDP is never worse than either extreme on the product metric
        assert edp_cycles * edp_energy <= cyc_cycles * cyc_energy * 1.0001, name
        assert edp_cycles * edp_energy <= en_cycles * en_energy * 1.0001, name
