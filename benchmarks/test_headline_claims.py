"""The paper's headline aggregates (abstract + Sec 5), asserted as bands.

Every quoted average is recomputed by :mod:`repro.analysis.headline` and
checked against a reproduction band — wide enough to absorb the documented
model substitutions, tight enough that a broken scheme or planner cannot
pass.
"""

from repro.analysis.headline import headline_numbers, render_headline


def run():
    return headline_numbers()


def test_headline_claims(benchmark, report):
    h = benchmark(run)
    report("Headline aggregates", render_headline(h))

    # conv1: paper 5.8x / 2.1x — bands 3x-8x and 1.5x-4x
    assert 3.0 < h.conv1_partition_vs_inter < 8.0
    assert 1.5 < h.conv1_partition_vs_intra < 4.0

    # abstract: "4.0x-8.3x for some layers"
    assert h.best_layer_speedup >= 4.0

    # whole-network: paper 1.83x on AlexNet, 1.43x on average
    assert 1.4 < h.alexnet_adaptive_vs_inter < 2.3
    assert 1.2 < h.avg_adaptive_vs_inter < 1.8

    # abstract: 28.04% PE energy saving — band 15-45%
    assert 15.0 < h.avg_pe_energy_saving_pct < 45.0

    # abstract: 90.3% on-chip memory energy saving — our count-exact model
    # yields ~73% (see EXPERIMENTS.md: we do not model intra's alignment
    # redundancy, which inflates the paper's inter-side baseline)
    assert 60.0 < h.avg_memory_energy_saving_pct < 95.0

    # Sec 5.3: 90.13% adap-2 vs adap-1 traffic reduction — band 70-95%
    assert 70.0 < h.avg_adap2_vs_adap1_traffic_pct < 95.0
