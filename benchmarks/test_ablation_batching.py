"""Ablation (extension) — batched inference vs the batch-1 FC wall.

The paper evaluates single-image forward propagation; at batch 1 the fully
connected layers are pure weight streaming (AlexNet fc6 alone moves 37.7 M
words) and dominate whole-network *time* even though they are <10% of the
MACs.  Batching keeps each weight tile resident across ``B`` images — the
standard deployment fix — and this ablation quantifies the payoff on our
model:

* AlexNet throughput rises steeply with batch size and saturates once the
  FC weight streams are hidden behind compute;
* NiN (no FC layers — its classifier is a 1x1 conv + global pooling) is
  nearly batch-insensitive, isolating the effect to FC weight traffic.
"""

from repro.adaptive import plan_batch
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import build

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def run():
    data = {}
    for name in ("alexnet", "nin"):
        net = build(name)
        data[name] = {
            b: plan_batch(net, CONFIG_16_16, batch_size=b).images_per_second()
            for b in BATCHES
        }
    return data


def test_batching_ablation(benchmark, report):
    data = benchmark(run)

    rows = [
        [name] + [f"{vals[b]:.1f}" for b in BATCHES]
        for name, vals in data.items()
    ]
    report(
        "Ablation — batched inference throughput (img/s, adaptive-2 @16-16, "
        "full network incl. FC)",
        format_table(["network"] + [f"B={b}" for b in BATCHES], rows),
    )

    anet, ninv = data["alexnet"], data["nin"]

    # throughput is monotone in batch size
    for name, vals in data.items():
        for small, big in zip(BATCHES, BATCHES[1:]):
            assert vals[big] >= vals[small] * 0.9999, (name, small)

    # FC-heavy AlexNet gains > 2.5x from batching...
    assert anet[128] / anet[1] > 2.5
    # ...and saturates: the last doubling buys < 5%
    assert anet[128] / anet[64] < 1.05

    # NiN has no FC weight wall: batching moves it < 40%
    assert ninv[128] / ninv[1] < 1.4

    # batching closes most of the gap to the conv-only compute bound
    from repro.adaptive import plan_network

    conv_only = plan_network(build("alexnet"), CONFIG_16_16, "adaptive-2")
    conv_bound_ips = 1.0 / CONFIG_16_16.cycles_to_seconds(conv_only.total_cycles)
    assert anet[128] > 0.5 * conv_bound_ips
