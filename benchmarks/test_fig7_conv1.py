"""Fig. 7 — Conv1 execution time under each scheme, 16-16 and 32-32 arrays.

Paper claims asserted:

* intra and partition are "much better than inter" and "almost reach the
  upper bound" on conv1 (Din = 3 starves the inter scheme);
* averaged over the 4 networks, partition outperforms inter ~5.8x and
  intra ~2.1x (we assert > 3x and > 1.5x respectively, both configs pooled);
* the inter scheme's waste *grows* with array width (poor scalability).
"""

from collections import defaultdict

from repro.analysis.experiments import fig7_conv1
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import render_fig7


def run():
    return fig7_conv1()


def test_fig7(benchmark, report):
    rows = benchmark(run)
    report("Fig. 7 — Conv-1 execution time", render_fig7(rows))

    cycles = defaultdict(dict)
    for r in rows:
        cycles[(r.config, r.network)][r.scheme] = r.cycles

    part_vs_inter, part_vs_intra = [], []
    for key, by_scheme in cycles.items():
        # partition nearly reaches the ideal bound
        assert by_scheme["partition"] <= 1.35 * by_scheme["ideal"], key
        # inter never beats partition, and except on the memory-bound VGG
        # conv1 (where every scheme hits the DMA wall) it loses big
        assert by_scheme["inter"] >= by_scheme["partition"], key
        if key[1] != "vgg":
            assert by_scheme["inter"] > 2.0 * by_scheme["partition"], key
        part_vs_inter.append(by_scheme["inter"] / by_scheme["partition"])
        part_vs_intra.append(by_scheme["intra"] / by_scheme["partition"])

    assert arithmetic_mean(part_vs_inter) > 3.0  # paper: 5.8x
    assert arithmetic_mean(part_vs_intra) > 1.5  # paper: 2.1x

    # scalability: doubling the array worsens inter's multiplier utilization
    # ('with Tin wider, more and more computing resources will be wasted')
    from repro.nn.zoo import build
    from repro.schemes import make_scheme
    from repro.arch.config import CONFIG_16_16, CONFIG_32_32

    for net_name in ("alexnet", "googlenet", "nin"):
        ctx = build(net_name).conv1()
        u16 = make_scheme("inter").schedule(ctx, CONFIG_16_16).utilization
        u32 = make_scheme("inter").schedule(ctx, CONFIG_32_32).utilization
        assert u32 < u16, net_name
