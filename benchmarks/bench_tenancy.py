"""Tenancy benchmark: chip partitioning and heterogeneous fleets.

Two headline experiments, both on seeded workloads in simulated
accelerator time (deterministic across reruns):

1. **Partitioned co-residency vs time-multiplexing** — a 32-32 chip is
   carved into two 16x32 column strips, one per tenant, and races the
   same chip serving both tenants through one shared queue.  The tenants
   run small-geometry mixes (alexnet/nin) that *underutilize* the full
   array — half the array keeps ~58% of the capacity, so the two strips
   together out-serve the pooled chip — and the offered rate sits in the
   window where the pooled queue goes unstable but each strip stays
   below saturation.  Chip-seconds are equal by construction (one
   physical chip, same duration, both sides).  Gate: the partitioned
   deployment wins on worst-tenant p95.

2. **Heterogeneous vs homogeneous fleets at equal cost** — a vgg tenant
   (compute-bound, 3.5x faster on a 32-32) plus three small-network
   tenants served on three fleets of equal cost weight (multipliers /
   256): ``het`` = 1x 32-32 + 4x 16-16, ``homog-small`` = 8x 16-16,
   ``homog-big`` = 2x 32-32.  The small fleet has nowhere good to put
   vgg; the big fleet has too few slots to isolate four tenants.  Gate:
   the heterogeneous placement wins on worst-tenant p95.

Writes ``BENCH_tenancy.json``.  Exits nonzero if either gate fails or
if the rollups are not byte-identical across two runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_tenancy.py [--smoke] [--output BENCH_tenancy.json]
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

from repro.arch.config import CONFIG_32_32
from repro.serve.workload import parse_tenant_mix
from repro.tenancy import (
    compare_fleets,
    compare_partitioned,
    even_partitions,
    parse_fleet,
    rollup_to_json,
    worst_tenant_p95,
)

PARTITION_TENANTS = "acme=alexnet:9/nin:1,beta=alexnet:4/nin:1"
PARTITION_RATE = 470.0
PARTITION_SEED = 1

FLEET_TENANTS = "ml=vgg@30,app1=alexnet@200,app2=nin@190,app3=alexnet:1/nin:1@180"
FLEET_RATE = 600.0
FLEET_SEED = 2

SLO_MS = 250.0


def run_partition_scenario(duration_s: float):
    tenants = parse_tenant_mix(PARTITION_TENANTS, slo_ms=SLO_MS)
    specs = even_partitions(CONFIG_32_32, 2)
    return compare_partitioned(
        CONFIG_32_32,
        specs,
        tenants,
        PARTITION_RATE,
        duration_s,
        seed=PARTITION_SEED,
    )


def run_fleet_scenario(duration_s: float):
    tenants = parse_tenant_mix(FLEET_TENANTS, slo_ms=SLO_MS)
    fleets = [
        parse_fleet("big:32-32:1,small:16-16:4", name="het"),
        parse_fleet("small:16-16:8", name="homog-small"),
        parse_fleet("big:32-32:2", name="homog-big"),
    ]
    return compare_fleets(
        fleets, tenants, FLEET_RATE, duration_s, seed=FLEET_SEED
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_tenancy.json")
    parser.add_argument(
        "--duration", type=float, default=20.0, help="offered-load window, s"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short window (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    duration = 5.0 if args.smoke else args.duration

    part = run_partition_scenario(duration)
    part_rerun = run_partition_scenario(duration)
    fleet = run_fleet_scenario(duration)
    fleet_rerun = run_fleet_scenario(duration)
    deterministic = (
        rollup_to_json(part) == rollup_to_json(part_rerun)
        and rollup_to_json(fleet) == rollup_to_json(fleet_rerun)
    )

    het_p95 = worst_tenant_p95(fleet["fleets"]["het"])
    best_homog = min(
        worst_tenant_p95(fleet["fleets"][name])
        for name in ("homog-small", "homog-big")
    )
    headline = {
        "duration_s": duration,
        "partitioned_worst_p95_ms": part["headline"]["worst_tenant_p95_ms"][
            "partitioned"
        ],
        "timemux_worst_p95_ms": part["headline"]["worst_tenant_p95_ms"][
            "timemux"
        ],
        "partitioned_wins": part["headline"]["partitioned_wins"],
        "partition_p95_ratio": part["headline"]["p95_ratio"],
        "het_worst_p95_ms": round(het_p95, 6),
        "best_homogeneous_worst_p95_ms": round(best_homog, 6),
        "het_wins": het_p95 < best_homog,
        "fleet_winner": fleet["headline"]["winner"],
        "equal_fleet_weights": len(
            set(fleet["scenario"]["fleets"].values())
        )
        == 1,
        "rollups_deterministic": deterministic,
    }

    payload = {
        "benchmark": "tenancy",
        "generated_by": "benchmarks/bench_tenancy.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "partition_scenario": part,
        "fleet_scenario": fleet,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        handle.write(rollup_to_json(payload))

    print(
        "partition: worst-tenant p95 "
        f"{headline['partitioned_worst_p95_ms']:.1f} ms partitioned vs "
        f"{headline['timemux_worst_p95_ms']:.1f} ms time-multiplexed "
        f"({headline['partition_p95_ratio']:.2f}x) at "
        f"{PARTITION_RATE:g} req/s on one 32-32 chip"
    )
    print(
        "fleet:     worst-tenant p95 "
        f"{headline['het_worst_p95_ms']:.1f} ms heterogeneous vs "
        f"{headline['best_homogeneous_worst_p95_ms']:.1f} ms best "
        f"homogeneous at equal cost weight (winner: "
        f"{headline['fleet_winner']})"
    )
    print(f"written to {args.output}")

    ok = True
    if not headline["partitioned_wins"]:
        print(
            "FAIL: partitioned co-residency lost to time-multiplexing on "
            "worst-tenant p95",
            file=sys.stderr,
        )
        ok = False
    if not headline["het_wins"]:
        print(
            "FAIL: heterogeneous fleet lost to the best homogeneous fleet "
            "on worst-tenant p95",
            file=sys.stderr,
        )
        ok = False
    if not headline["equal_fleet_weights"]:
        print("FAIL: fleet cost weights are not equal", file=sys.stderr)
        ok = False
    if not headline["rollups_deterministic"]:
        print(
            "FAIL: rollups differed between identical runs", file=sys.stderr
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
