"""Resilience benchmark: chaos scenarios, availability and recovery.

Runs every named chaos scenario (:mod:`repro.resilience.scenarios`) at a
fixed seed and reduces each to its headline resilience numbers:
availability, goodput under fault relative to healthy, p95/p99 latency
ratios, MTTR, and the retry/failure accounting.

Writes ``BENCH_resilience.json``.  The headline asserts the structural
claims and the script exits nonzero if any fails:

1. **zero silent drops** — every offered request terminates as completed,
   shed, or failed-with-reason, in every scenario;
2. **single-crash recovery** — under a single replica fail-stop at steady
   state, windowed goodput recovers to at least the survivor fraction
   ``(N-1)/N`` of healthy goodput, within a measured (finite) MTTR;
3. **determinism** — running the single-crash scenario twice produces
   byte-identical rollup JSON.

All numbers are modelled accelerator time: reruns are byte-deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--smoke] [--output BENCH_resilience.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.resilience import (
    SCENARIO_NAMES,
    build_scenario,
    rollup_to_json,
    run_scenario,
)

SEED = 1
SMOKE_SCENARIOS = ("single-crash", "fail-slow", "pe-mask")


def digest(rollup: dict) -> dict:
    faulted = rollup["faulted"]
    recovery = rollup["recovery"]
    terminated = faulted["completed"] + faulted["shed"] + faulted["failed"]
    return {
        "scenario": rollup["scenario"]["name"],
        "offered": faulted["offered"],
        "completed": faulted["completed"],
        "shed": faulted["shed"],
        "failed": faulted["failed"],
        "no_silent_drops": terminated == faulted["offered"],
        "availability": rollup["availability"],
        "goodput_under_fault_rps": rollup["goodput_under_fault"],
        "goodput_ratio": rollup["goodput_ratio"],
        "latency_ratio_p95": rollup["latency_ratio"]["p95"],
        "latency_ratio_p99": rollup["latency_ratio"]["p99"],
        "mttr_ms": recovery["mttr_ms"],
        "recovered": recovery["recovered"],
        "survivor_fraction": recovery["survivor_fraction"],
        "retries": rollup["failover"]["retries"],
        "hedges": rollup["failover"]["hedges"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_resilience.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="three-scenario subset (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    names = SMOKE_SCENARIOS if args.smoke else SCENARIO_NAMES
    rollups = {name: run_scenario(build_scenario(name, seed=SEED)) for name in names}
    rows = [digest(rollups[name]) for name in names]

    crash = rollups["single-crash"]
    crash_row = digest(crash)
    goodput_floor = crash_row["survivor_fraction"]
    recovers = (
        crash_row["recovered"]
        and crash_row["mttr_ms"] is not None
        and crash_row["goodput_ratio"] >= goodput_floor
    )
    no_drops = all(r["no_silent_drops"] for r in rows)
    deterministic = rollup_to_json(crash) == rollup_to_json(
        run_scenario(build_scenario("single-crash", seed=SEED))
    )

    headline = {
        "no_silent_drops_everywhere": no_drops,
        "single_crash_recovers_to_survivor_fraction": recovers,
        "single_crash_mttr_ms": crash_row["mttr_ms"],
        "single_crash_availability": crash_row["availability"],
        "byte_deterministic": deterministic,
    }

    payload = {
        "benchmark": "resilience",
        "generated_by": "benchmarks/bench_resilience.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "seed": SEED,
        "smoke": args.smoke,
        "scenarios": rows,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"{'scenario':<14s} {'avail':>7s} {'goodput':>8s} {'p95':>6s} "
        f"{'p99':>6s} {'mttr ms':>8s} {'retries':>7s} {'failed':>6s}"
    )
    for r in rows:
        mttr = f"{r['mttr_ms']:.0f}" if r["mttr_ms"] is not None else "-"
        print(
            f"{r['scenario']:<14s} {r['availability']:>7.4f} "
            f"{r['goodput_ratio']:>8.3f} {r['latency_ratio_p95']:>6.2f} "
            f"{r['latency_ratio_p99']:>6.2f} {mttr:>8s} "
            f"{r['retries']:>7d} {r['failed']:>6d}"
        )
    ok = True
    if not no_drops:
        print("FAIL: a request was silently dropped", file=sys.stderr)
        ok = False
    if not recovers:
        print(
            "FAIL: single-crash goodput did not recover to the survivor "
            "fraction of healthy within a finite MTTR",
            file=sys.stderr,
        )
        ok = False
    if not deterministic:
        print("FAIL: single-crash rollup is not byte-deterministic", file=sys.stderr)
        ok = False
    print(f"written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
