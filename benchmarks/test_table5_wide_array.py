"""Extension — Table 5 re-run on the 32-32 array.

The paper reports PE energy reduction at 16-16 only; the driver is
parameterized, so the 32-32 column comes for free.  The wider array
*amplifies* the adaptive advantage on the shallow-input networks (inter
wastes 29/32 lanes on conv1 instead of 13/16) while VGG stays pinned by
memory — the scalability argument of Sec 4.1.1, in energy terms.
"""

from repro.analysis.experiments import table5_pe_energy
from repro.analysis.report import render_table5
from repro.arch.config import CONFIG_16_16, CONFIG_32_32


def run():
    return {
        "16-16": table5_pe_energy(CONFIG_16_16),
        "32-32": table5_pe_energy(CONFIG_32_32),
    }


def test_table5_wide_array(benchmark, report):
    data = benchmark(run)
    report("Table 5 @16-16 (paper)", render_table5(data["16-16"]))
    report("Table 5 @32-32 (extension)", render_table5(data["32-32"]))

    r16 = {(r.network, r.scheme): r.reduction_pct for r in data["16-16"]}
    r32 = {(r.network, r.scheme): r.reduction_pct for r in data["32-32"]}

    # the ordering holds at both widths
    for r in (r16, r32):
        for net in ("alexnet", "googlenet", "vgg"):
            assert r[(net, "intra")] < r[(net, "partition")]
            assert r[(net, "partition")] <= r[(net, "adaptive-1")] + 12.0

    # wider array -> bigger adaptive saving on AlexNet (utilization cliff)
    assert r32[("alexnet", "adaptive-1")] > r16[("alexnet", "adaptive-1")]

    # VGG stays memory-pinned: the adaptive saving remains marginal
    assert abs(r32[("vgg", "adaptive-1")]) < 10.0
