"""Model validation — the reproduction checking itself.

Not a paper artifact: this bench regenerates the evidence that the
substrate is trustworthy, in one place:

1. **machine parity** — executing the compiled macro program reproduces
   the analytical totals exactly, for every policy on AlexNet;
2. **loop-nest parity** — enumerating the schedules cycle by cycle gives
   the same operation counts on the conv1 geometries;
3. **pipeline convergence** — the event-driven double-buffered pipeline
   converges onto the analytical ``max(compute, stream)`` model as the
   pass depth grows (ratios printed per network).
"""

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.isa.compiler import compile_network
from repro.nn.zoo import benchmark_networks, build
from repro.schemes import make_scheme
from repro.sim.event import simulate_run
from repro.sim.loopnest import enumerate_inter, enumerate_intra, enumerate_partition
from repro.sim.machine import Machine

ENUMS = {
    "inter": enumerate_inter,
    "intra": enumerate_intra,
    "partition": enumerate_partition,
}


def run():
    config = CONFIG_16_16
    data = {"parity": [], "loopnest": [], "pipeline": []}

    net = build("alexnet")
    for policy in ("ideal", "inter", "intra", "partition", "adaptive-2"):
        planned = plan_network(net, config, policy)
        executed = Machine(config).execute(compile_network(net, config, policy))
        data["parity"].append(
            (
                policy,
                executed.total_cycles - planned.total_cycles,
                executed.buffer_accesses - planned.buffer_accesses,
                executed.dram_words - planned.dram_words,
            )
        )

    # loop-nest enumeration on a scaled conv1 (3 maps, 11x11/4 on 39x39)
    from tests.conftest import make_ctx

    ctx = make_ctx(in_maps=3, out_maps=8, kernel=11, stride=4, hw=39)
    for scheme, enum in ENUMS.items():
        analytical = make_scheme(scheme).schedule(ctx, config)
        ops = list(enum(ctx, config))
        data["loopnest"].append(
            (
                scheme,
                analytical.operations,
                len(ops),
                sum(o.useful_macs for o in ops) - ctx.macs,
            )
        )

    for net in benchmark_networks():
        planned = plan_network(net, config, "adaptive-2")
        ratios = {
            passes: simulate_run(planned, passes) / planned.total_cycles
            for passes in (1, 4, 16, 64)
        }
        data["pipeline"].append((net.name, ratios))
    return data


def test_model_validation(benchmark, report):
    data = benchmark(run)

    parity_rows = [
        [policy, f"{dc:+.1f}", f"{da:+d}", f"{dd:+d}"]
        for policy, dc, da, dd in data["parity"]
    ]
    report(
        "Validation 1 — machine vs analytical (deltas; all must be ~0)",
        format_table(["policy", "cycles", "accesses", "DRAM"], parity_rows),
    )
    for policy, dc, da, dd in data["parity"]:
        assert abs(dc) < 2.0 and da == 0 and dd == 0, policy

    loop_rows = [
        [scheme, str(expected), str(got), f"{dmacs:+d}"]
        for scheme, expected, got, dmacs in data["loopnest"]
    ]
    report(
        "Validation 2 — loop-nest enumeration (11x11/s4 conv1 geometry)",
        format_table(["scheme", "analytical ops", "enumerated", "MAC delta"], loop_rows),
    )
    for scheme, expected, got, dmacs in data["loopnest"]:
        assert expected == got and dmacs == 0, scheme

    pipe_rows = [
        [name] + [f"{ratios[p]:.3f}" for p in (1, 4, 16, 64)]
        for name, ratios in data["pipeline"]
    ]
    report(
        "Validation 3 — event-pipeline / analytical ratio by pass depth",
        format_table(["network", "1 pass", "4", "16", "64"], pipe_rows),
    )
    for name, ratios in data["pipeline"]:
        # serialized end of the sandwich ...
        assert ratios[1] > 1.05, name
        # ... converging monotonically onto the analytical model
        assert ratios[1] >= ratios[4] >= ratios[16] >= ratios[64] - 1e-9, name
        assert 0.97 < ratios[64] < 1.03, name
