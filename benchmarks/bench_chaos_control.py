"""Self-healing control plane benchmark: chaos under closed-loop autoscaling.

Runs every chaos-under-autoscaling scenario
(:mod:`repro.control.chaos_scenarios`) at a fixed seed.  Each scenario
executes four arms on the identical seeded request list — frozen-healthy,
frozen-faulted, the non-healing PR-7 loop under the same control-plane
faults, and the full self-healing loop — so every attainment delta is
attributable to healing.

Writes ``BENCH_chaos_control.json``.  The headline asserts the
acceptance-criteria claims and the script exits nonzero if any fails:

1. **every declared invariant holds** in every scenario (zero silent
   drops, bounded MTTR, attainment >= survivor-capacity floor, safe mode
   never sheds more than the frozen baseline, ...);
2. **self-healing wins** — on the composite-storm schedule (fail-stop +
   PE mask + flash crowd + tampered telemetry + lost actuation +
   controller crash) the self-healing loop's SLO attainment is strictly
   above BOTH the frozen fleet and the non-healing loop under the
   identical fault schedule;
3. **determinism** — the composite-storm rollup is byte-identical across
   reruns, and the full scenario sweep is byte-identical across ``--jobs``
   settings (scenarios are independent; ``parallel_map`` preserves input
   order).

All numbers are modelled accelerator time: reruns are byte-deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos_control.py [--smoke] [--jobs N] [--output BENCH_chaos_control.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.control.chaos_scenarios import (
    CONTROL_SCENARIO_NAMES,
    build_control_scenario,
    rollup_to_json,
    run_control_scenario,
)
from repro.perf import parallel_map

SEED = 1
SMOKE_SCENARIOS = ("crash-replace", "loop-restart", "composite-storm")
HEADLINE_SCENARIO = "composite-storm"


def _run_one(name: str) -> dict:
    return run_control_scenario(build_control_scenario(name, seed=SEED))


def digest(rollup: dict) -> dict:
    att = rollup["attainment"]
    recovery = rollup["recovery"]
    detail = rollup["healing_detail"]
    return {
        "scenario": rollup["scenario"]["name"],
        "attainment_healing": att["healing"],
        "attainment_nonhealing": att["nonhealing"],
        "attainment_frozen_faulted": att["frozen_faulted"],
        "attainment_frozen_healthy": att["frozen_healthy"],
        "delta_vs_frozen": att["delta_vs_frozen"],
        "delta_vs_nonhealing": att["delta_vs_nonhealing"],
        "mttr_ms": recovery["mttr_ms"],
        "recovered": recovery["recovered"],
        "telemetry_flags": detail["telemetry_flags"],
        "restarts": len(detail["restarts"]),
        "safe_mode_intervals": len(detail["safe_mode_intervals"]),
        "invariants": rollup["invariants"],
        "invariants_pass": all(rollup["invariants"].values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_chaos_control.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="three-scenario subset (the CI smoke configuration)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="scenario-level process parallelism (output is identical "
        "for every value)",
    )
    args = parser.parse_args(argv)

    names = SMOKE_SCENARIOS if args.smoke else CONTROL_SCENARIO_NAMES
    rollups = dict(
        zip(names, parallel_map(_run_one, names, jobs=args.jobs))
    )
    rows = [digest(rollups[name]) for name in names]

    storm = rollups[HEADLINE_SCENARIO]
    storm_row = digest(storm)
    healing_wins = (
        storm_row["attainment_healing"] > storm_row["attainment_frozen_faulted"]
        and storm_row["attainment_healing"] > storm_row["attainment_nonhealing"]
    )
    invariants_hold = all(r["invariants_pass"] for r in rows)
    deterministic = rollup_to_json(storm) == rollup_to_json(
        _run_one(HEADLINE_SCENARIO)
    )

    headline = {
        "all_invariants_hold": invariants_hold,
        "healing_beats_frozen_and_nonhealing": healing_wins,
        "storm_attainment_healing": storm_row["attainment_healing"],
        "storm_attainment_nonhealing": storm_row["attainment_nonhealing"],
        "storm_attainment_frozen": storm_row["attainment_frozen_faulted"],
        "storm_mttr_ms": storm_row["mttr_ms"],
        "byte_deterministic": deterministic,
    }

    payload = {
        "benchmark": "chaos_control",
        "generated_by": "benchmarks/bench_chaos_control.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "seed": SEED,
        "smoke": args.smoke,
        "scenarios": rows,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"{'scenario':<24s} {'healing':>8s} {'nonheal':>8s} {'frozen':>8s} "
        f"{'mttr ms':>8s} {'invariants':>10s}"
    )
    for r in rows:
        mttr = f"{r['mttr_ms']:.0f}" if r["mttr_ms"] is not None else "-"
        n_inv = len(r["invariants"])
        n_ok = sum(r["invariants"].values())
        print(
            f"{r['scenario']:<24s} {r['attainment_healing']:>8.4f} "
            f"{r['attainment_nonhealing']:>8.4f} "
            f"{r['attainment_frozen_faulted']:>8.4f} {mttr:>8s} "
            f"{n_ok:>7d}/{n_inv}"
        )
    ok = True
    if not invariants_hold:
        bad = [
            f"{r['scenario']}:{inv}"
            for r in rows
            for inv, held in r["invariants"].items()
            if not held
        ]
        print(f"FAIL: invariants violated: {', '.join(bad)}", file=sys.stderr)
        ok = False
    if not healing_wins:
        print(
            "FAIL: self-healing attainment is not strictly above both the "
            "frozen fleet and the non-healing loop on composite-storm",
            file=sys.stderr,
        )
        ok = False
    if not deterministic:
        print(
            "FAIL: composite-storm rollup is not byte-deterministic",
            file=sys.stderr,
        )
        ok = False
    print(f"written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
