"""Ablation — what Algorithm 2's layout handoff is worth in DRAM bandwidth.

Algorithm 2 lines 4-5 store each layer's output in the order its consumer
streams (inter-order = depth-fastest, intra-order = planar) precisely so
every off-chip stream is unit-stride.  This ablation prices the
alternative with the burst-level DRAM model: for each conv layer of each
benchmark network, the consumer's stream is either unit-stride (matched
layout) or strided by the mismatch (depth-interleaved reads from a planar
tensor stride by X*Y; planar reads from an interleaved tensor stride by
Din), and the extra DMA cycles are charged.

Asserted: mismatched layouts inflate whole-network DMA time by >3x on
every benchmark — the layout handoff is not a nicety, it is the difference
between a 4-words/cycle stream and a crawl.
"""

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.arch.dram import DEFAULT_DRAM
from repro.nn.zoo import benchmark_networks
from repro.tiling.layout import Layout


def input_stream_stride(result, ctx, matched: bool) -> int:
    """Word stride of the layer's input stream in DRAM."""
    if matched:
        return 1
    if result.input_layout is Layout.INTER:
        # wants depth-fastest, stored planar: consecutive depth words are a
        # whole map apart
        return ctx.in_shape.height * ctx.in_shape.width
    # wants planar, stored depth-interleaved: consecutive pixels are Din apart
    return ctx.in_shape.depth


def dma_cycles(net, matched: bool) -> float:
    run = plan_network(net, CONFIG_16_16, "adaptive-2")
    contexts = {c.name: c for c in net.conv_contexts()}
    total = 0.0
    for r in run.layers:
        ctx = contexts[r.layer_name]
        stride = input_stream_stride(r, ctx, matched)
        # the input share of the layer's DRAM traffic streams at `stride`;
        # weights and the output drain are always unit-stride (they are
        # produced in storage order)
        input_words = r.accesses["input"].stores
        other_words = r.dram_words - input_words
        total += DEFAULT_DRAM.cycles_for_stream(input_words, stride)
        total += DEFAULT_DRAM.cycles_for_stream(other_words, 1)
    return total


def run():
    data = {}
    for net in benchmark_networks():
        data[net.name] = (dma_cycles(net, True), dma_cycles(net, False))
    return data


def test_alignment_ablation(benchmark, report):
    data = benchmark(run)

    rows = [
        [name, f"{good:.4g}", f"{bad:.4g}", f"{bad / good:.1f}x"]
        for name, (good, bad) in data.items()
    ]
    report(
        "Ablation — layout handoff vs mismatched layouts (DMA cycles, "
        "burst-level DRAM model)",
        format_table(
            ["network", "matched layout", "mismatched", "penalty"], rows
        ),
    )

    for name, (good, bad) in data.items():
        assert bad > 3.0 * good, name
        # and matched-layout DMA agrees with the flat 4 w/cyc model within 2x
        flat = plan_network(
            [n for n in benchmark_networks() if n.name == name][0],
            CONFIG_16_16,
            "adaptive-2",
        )
        flat_dma = sum(r.dma_cycles for r in flat.layers)
        assert 0.5 < good / flat_dma < 2.0, name
