"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper: it times the
experiment driver with pytest-benchmark, prints the rendered artifact (so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
full evaluation section), and asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest


def emit(title: str, text: str) -> None:
    """Print a rendered artifact with a banner (shows under -s / in logs)."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@pytest.fixture
def report():
    return emit
