"""Table 5 — PE energy reduction relative to the inter-kernel baseline.

Paper rows (%, 16-16):

    network    intra   partition  adap-1  adap-2
    alexnet    32.85     40.23    47.77   47.71
    googlenet   9.66     22.77    31.48   31.40
    VGG       -44.72     -8.61     3.00    2.89

Asserted shape (see EXPERIMENTS.md for measured values):

* ordering intra < partition < adap-1 on every network;
* adap-2 within 2 points *below* adap-1 (the add-and-store adder group);
* VGG's intra entry is strongly negative, partition mildly negative,
  adaptive slightly positive — the memory-bound signature.
"""

from repro.analysis.experiments import table5_pe_energy
from repro.analysis.report import render_table5


def run():
    return table5_pe_energy()


def test_table5(benchmark, report):
    rows = benchmark(run)
    report("Table 5 — PEs energy reduction (%)", render_table5(rows))

    r = {(row.network, row.scheme): row.reduction_pct for row in rows}

    for net in ("alexnet", "googlenet", "vgg"):
        assert r[(net, "intra")] < r[(net, "partition")] < r[(net, "adaptive-1")]
        gap = r[(net, "adaptive-1")] - r[(net, "adaptive-2")]
        assert 0 <= gap < 2.0, net

    # AlexNet: both partition and adaptive save substantially
    assert r[("alexnet", "partition")] > 25.0
    assert r[("alexnet", "adaptive-1")] > 30.0

    # VGG: the paper's signature signs
    assert r[("vgg", "intra")] < -20.0
    assert -20.0 < r[("vgg", "partition")] < 0.0
    assert 0.0 < r[("vgg", "adaptive-1")] < 10.0
