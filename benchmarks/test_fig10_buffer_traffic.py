"""Fig. 10 — on-chip buffer access traffic (bits) for whole networks.

Paper claims asserted:

* adap-2 cuts traffic ~90% vs adap-1 (weight-resident inter for the top
  layers; we assert > 70% on every network/config);
* the original inter scheme is the traffic hog among practical policies;
* on VGG, fixed partition has *more* accesses than everything else (its
  per-map add-and-store explodes when Din is large);
* adap-2 is the best of the inter-family and partition policies everywhere,
  and stays within ~2x of fixed intra (the paper reports adap-2 strictly
  below intra — our intra model counts only aligned useful words, so it is
  optimistic for intra; see EXPERIMENTS.md).
"""

from collections import defaultdict

from repro.analysis.experiments import fig10_buffer_traffic
from repro.analysis.metrics import reduction_pct
from repro.analysis.report import render_fig10


def run():
    return fig10_buffer_traffic()


def test_fig10(benchmark, report):
    rows = benchmark(run)
    report("Fig. 10 — buffer traffic comparison", render_fig10(rows))

    bits = defaultdict(dict)
    for r in rows:
        bits[(r.config, r.network)][r.policy] = r.access_bits

    for key, by_policy in bits.items():
        a1, a2 = by_policy["adaptive-1"], by_policy["adaptive-2"]
        # paper: 90.13% average reduction; assert > 70% per case
        assert reduction_pct(a1, a2) > 70.0, key
        # inter is far above adap-2 everywhere
        assert by_policy["inter"] > 4 * a2, key
        # adap-2 beats inter, partition and adap-1 outright...
        for policy in ("inter", "partition", "adaptive-1"):
            assert a2 <= by_policy[policy], (key, policy)
        # ...and tracks our (optimistic) intra model within 2x
        assert a2 <= 2.0 * by_policy["intra"], key

    # VGG: partition's add-and-store makes it the worst offender
    for config in ("16-16", "32-32"):
        v = bits[(config, "vgg")]
        assert v["partition"] > max(
            v["inter"], v["intra"], v["adaptive-1"], v["adaptive-2"]
        ), config
