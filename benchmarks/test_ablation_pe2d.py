"""Ablation — the 2D-PE mesh (Sec 4.1.2) vs the adaptive linear array.

The paper dismisses the systolic 2D-PE realization because it "will
encounter performance degradation or underutilization issue when it
encounters networks with varied size of kernels and stride".  This
ablation quantifies that with the ShiDianNao-style mesh model
(:mod:`repro.schemes.pe2d`) on the same multiplier budget:

* on VGG — one kernel size, stride 1, the mesh's home turf — pe2d is
  competitive with the adaptive plan (within ~25%);
* on AlexNet / NiN — 11x11/4 bottom layers and 13x13 maps — the mesh
  falls far behind (stride stalls + tile quantization);
* the adaptive scheme never loses to the mesh.
"""

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import benchmark_networks
from repro.schemes import make_scheme


def pe2d_network_cycles(net, config) -> float:
    scheme = make_scheme("pe2d")
    return sum(
        scheme.schedule(ctx, config).total_cycles for ctx in net.conv_contexts()
    )


def run():
    config = CONFIG_16_16
    data = {}
    for net in benchmark_networks():
        adaptive = plan_network(net, config, "adaptive-2")
        adaptive_layer_cycles = sum(r.total_cycles for r in adaptive.layers)
        data[net.name] = {
            "pe2d": pe2d_network_cycles(net, config),
            "adaptive": adaptive_layer_cycles,
        }
    return data


def test_pe2d_ablation(benchmark, report):
    data = benchmark(run)

    rows = [
        [
            name,
            f"{d['pe2d']:.4g}",
            f"{d['adaptive']:.4g}",
            f"{d['pe2d'] / d['adaptive']:.2f}x",
        ]
        for name, d in data.items()
    ]
    report(
        "Ablation — 2D-PE mesh vs adaptive (cycles @16-16 budget)",
        format_table(["network", "pe2d", "adaptive", "mesh penalty"], rows),
    )

    for name, d in data.items():
        # the adaptive plan never loses to the rigid mesh
        assert d["adaptive"] <= d["pe2d"] * 1.0001, name

    # VGG: the mesh's best case — single kernel, stride 1
    assert data["vgg"]["pe2d"] / data["vgg"]["adaptive"] < 1.3

    # varied kernels/strides: the degradation the paper predicts
    for name in ("alexnet", "nin"):
        assert data[name]["pe2d"] / data[name]["adaptive"] > 1.5, name
