"""Ablation — double buffering ("data fetch off the critical path").

The paper's tiling/layout machinery exists so "the data fetch operations
[move] off the critical path of NN accelerator" — i.e. so compute can
overlap the DMA and host streams.  Disabling the overlap
(``overlap_streams = False``) serializes compute and memory per layer and
measures what that machinery is worth:

* whole-network slowdowns of ~1.15-1.6x across the benchmarks;
* the damage tracks the stream/compute ratio: stream-heavy plans (fixed
  intra with its unrolled DMA) suffer the most.
"""

import dataclasses

from repro.adaptive import plan_network
from repro.analysis.report import format_table
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import benchmark_networks

POLICIES = ("adaptive-2", "intra")


def run():
    serial_cfg = dataclasses.replace(CONFIG_16_16, overlap_streams=False)
    data = {}
    for net in benchmark_networks():
        for policy in POLICIES:
            overlapped = plan_network(net, CONFIG_16_16, policy).total_cycles
            serialized = plan_network(net, serial_cfg, policy).total_cycles
            data[(net.name, policy)] = (overlapped, serialized)
    return data


def test_overlap_ablation(benchmark, report):
    data = benchmark(run)

    rows = [
        [net, policy, f"{ovl:.4g}", f"{ser:.4g}", f"{ser / ovl:.2f}x"]
        for (net, policy), (ovl, ser) in data.items()
    ]
    report(
        "Ablation — double buffering on/off (cycles @16-16)",
        format_table(
            ["network", "policy", "overlapped", "serialized", "slowdown"], rows
        ),
    )

    for (net, policy), (ovl, ser) in data.items():
        # serialization never helps, and always costs something real
        assert ser > ovl, (net, policy)
        assert ser / ovl > 1.05, (net, policy)
        # but can never exceed 2x (sum vs max of two terms)
        assert ser / ovl <= 2.0, (net, policy)

    # stream-heavy intra hurts more than the adaptive plan on every net
    for net in ("alexnet", "googlenet", "vgg", "nin"):
        adaptive_slowdown = data[(net, "adaptive-2")][1] / data[(net, "adaptive-2")][0]
        intra_slowdown = data[(net, "intra")][1] / data[(net, "intra")][0]
        assert intra_slowdown >= adaptive_slowdown * 0.98, net
