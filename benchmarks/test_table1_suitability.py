"""Table 1 — the qualitative scheme-suitability matrix, made checkable.

The paper's Table 1:

    scheme     suited layer characteristic          advantage
    inter      large #input maps and small kernel   implement easily
    intra      kernel = stride                      less memory traffic
    partition  big kernel or small #input maps      both of above

Each row carries a witness layer geometry; the bench asserts that on its
witness, the row's scheme (a) wins or ties the per-layer cycle oracle and
(b) exhibits the claimed advantage (intra's witness has the least buffer
traffic of the practical schemes; partition's witness wins on both cycles
and traffic vs inter).
"""

from repro.adaptive.search import best_scheme_for_layer
from repro.analysis.experiments import table1_scheme_comparison
from repro.analysis.report import render_table1
from repro.arch.config import CONFIG_16_16
from repro.schemes import make_scheme

from tests.conftest import make_ctx


def run():
    return table1_scheme_comparison()


def witness_ctx(witness):
    k, s, din = witness
    hw = max(4 * k, 16)
    return make_ctx(in_maps=din, out_maps=32, kernel=k, stride=s, hw=hw)


def test_table1(benchmark, report):
    rows = benchmark(run)
    report("Table 1 — scheme suitability", render_table1(rows))

    config = CONFIG_16_16
    by_scheme = {r.scheme: r for r in rows}

    # every witness is (or ties) the oracle winner for its row's scheme;
    # inter's witness may be won by inter-improved (same cycles, less traffic)
    for row in rows:
        ctx = witness_ctx(row.witness)
        oracle = best_scheme_for_layer(ctx, config)
        winner_family = oracle.scheme.replace("inter-improved", "inter")
        assert winner_family == row.scheme, (row.scheme, oracle.scheme)

    # intra's advantage: least memory traffic on its k == s witness
    ctx = witness_ctx(by_scheme["intra"].witness)
    intra = make_scheme("intra").schedule(ctx, config)
    inter = make_scheme("inter").schedule(ctx, config)
    assert intra.buffer_accesses < inter.buffer_accesses

    # partition's advantage: "both of above" — beats inter on cycles AND
    # traffic on its big-kernel/shallow witness
    ctx = witness_ctx(by_scheme["partition"].witness)
    part = make_scheme("partition").schedule(ctx, config)
    inter = make_scheme("inter").schedule(ctx, config)
    assert part.total_cycles < inter.total_cycles
    assert part.buffer_accesses < inter.buffer_accesses
