"""Capacity-planner benchmark: the what-if search vs naive provisioning.

One headline experiment on a seeded mixed-tenant forecast (deterministic
across reruns):

**Planner vs best naive homogeneous fleet** — the full candidate grid
(both geometries, 1-4 chips, replication/pipeline/data-parallel/
partitioning, adaptive batching up to 16) is searched by
:func:`repro.capacity.plan_capacity` under a one-crash fault model, and
races a *naive* grid restricted to what a spreadsheet buyer would try:
homogeneous replicated fleets at batch 1 — no batching, no sharding, no
partitioning.  Both searches see the same forecast, SLO target, and
fault model, and rank by cost per million good requests.  Gates:

1. the planner's winner is feasible (healthy worst-tenant attainment
   meets the SLO target);
2. the planner beats the naive winner on cost at equal-or-better
   attainment — batching lets a smaller fleet meet the same SLO, so the
   win is structural, not a tie-break;
3. the ranked JSON is byte-identical across a cold and a warm rerun
   (the second run starts from the on-disk plan cache the first one
   wrote).

Writes ``BENCH_capacity.json``.  Exits nonzero if any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_capacity.py [--smoke] [--output BENCH_capacity.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro.capacity import (
    CandidateGrid,
    FaultModel,
    ForecastSpec,
    plan_capacity,
    report_to_json,
)

TENANTS = "acme=alexnet:9/nin:1,beta=alexnet:4/nin:1@2"
RATE = 260.0
SLO_MS = 250.0
SLO_TARGET = 0.95
SEED = 11

FAULTS = FaultModel(seed=4, crashes=1)

PLANNER_GRID = CandidateGrid(
    geometries=("16-16", "32-32"),
    chip_counts=(1, 2, 4),
    strategies=("replicated", "pipeline", "data-parallel", "partitioned"),
    groups=(2,),
    splits=(2,),
    max_batches=(1, 16),
)

# what a spreadsheet buyer would try: homogeneous replicated fleets,
# one request per batch, no sharding, no partitioning
NAIVE_GRID = CandidateGrid(
    geometries=("16-16", "32-32"),
    chip_counts=(1, 2, 4),
    max_batches=(1,),
)


def run_search(grid: CandidateGrid, forecast: ForecastSpec, cache_dir: str):
    return plan_capacity(
        grid,
        forecast,
        slo_target=SLO_TARGET,
        fault_model=FAULTS,
        cache_dir=cache_dir,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_capacity.json")
    parser.add_argument(
        "--duration", type=float, default=6.0, help="forecast window, s"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short window (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    duration = 2.5 if args.smoke else args.duration
    forecast = ForecastSpec.parse(
        TENANTS, rate=RATE, duration_s=duration, slo_ms=SLO_MS, seed=SEED
    )

    with tempfile.TemporaryDirectory(prefix="bench-capacity-") as cache_dir:
        planned = run_search(PLANNER_GRID, forecast, cache_dir)
        warm = run_search(PLANNER_GRID, forecast, cache_dir)
        naive = run_search(NAIVE_GRID, forecast, cache_dir)
        warm_disk_hits = (
            warm["cache"]["disk_hits"] + warm["cache"]["workers"]["disk_hits"]
        )
        warm_hits = warm["cache"]["planner_hits"] + warm["cache"]["workers"]["hits"]

    stable = report_to_json(planned) == report_to_json(warm)
    winner = planned["deployments"][planned["winner"]]
    baseline = naive["deployments"][naive["winner"]]

    winner_cost = winner.get("cost_per_mreq")
    baseline_cost = baseline.get("cost_per_mreq")
    winner_attain = winner["healthy"]["attainment"] if "healthy" in winner else 0.0
    baseline_attain = (
        baseline["healthy"]["attainment"] if "healthy" in baseline else 0.0
    )
    planner_feasible = bool(winner.get("feasible"))
    beats_naive = (
        planner_feasible
        and winner_cost is not None
        and baseline_cost is not None
        and winner_cost <= baseline_cost
        and winner_attain >= baseline_attain
    )

    headline = {
        "duration_s": duration,
        "planner_winner": planned["winner"],
        "planner_cost_per_mreq": winner_cost,
        "planner_attainment": winner_attain,
        "planner_degraded_attainment": (winner.get("degraded") or {}).get(
            "attainment"
        ),
        "planner_feasible": planner_feasible,
        "naive_winner": naive["winner"],
        "naive_cost_per_mreq": baseline_cost,
        "naive_attainment": baseline_attain,
        "cost_ratio": (
            round(baseline_cost / winner_cost, 6)
            if winner_cost and baseline_cost
            else None
        ),
        "beats_naive": beats_naive,
        "candidates": planned["search"]["candidates"],
        "pruned": planned["search"]["pruned"],
        "simulated": planned["search"]["simulated"],
        "warm_disk_hits": warm_disk_hits,
        "warm_cache_hits": warm_hits,
        "ranked_json_stable": stable,
    }

    payload = {
        "benchmark": "capacity",
        "generated_by": "benchmarks/bench_capacity.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "planner": {k: v for k, v in planned.items() if k != "cache"},
        "naive": {k: v for k, v in naive.items() if k != "cache"},
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"planner: {headline['candidates']} candidates, "
        f"{headline['pruned']} pruned analytically, "
        f"{headline['simulated']} simulated; winner "
        f"{headline['planner_winner']} at "
        f"{winner_cost:.1f} chip-cost/Mreq, "
        f"{winner_attain:.1%} attainment"
    )
    print(
        f"naive:   winner {headline['naive_winner']} at "
        f"{baseline_cost:.1f} chip-cost/Mreq, "
        f"{baseline_attain:.1%} attainment "
        f"({headline['cost_ratio']:.2f}x planner's cost)"
    )
    print(
        f"rerun:   {'byte-identical' if stable else 'DIFFERS'}, "
        f"{warm_hits} plan-cache hits ({warm_disk_hits} from disk — forked "
        f"workers inherit the cold run's in-memory cache)"
    )
    print(f"written to {args.output}")

    ok = True
    if not planner_feasible:
        print(
            "FAIL: the planner's winning deployment misses the SLO target",
            file=sys.stderr,
        )
        ok = False
    if not beats_naive:
        print(
            "FAIL: planner did not beat the best naive homogeneous fleet "
            "on cost at equal-or-better attainment",
            file=sys.stderr,
        )
        ok = False
    if not stable:
        print(
            "FAIL: ranked JSON differed between cold and warm runs",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
