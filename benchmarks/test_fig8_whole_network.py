"""Fig. 8 — whole-network performance under the five policies.

Paper claims asserted:

* the adaptive scheme outperforms every fixed scheme (10% slack allowed
  where partition wins on Din-chunk quantization, see DESIGN.md);
* adpa vs inter ~= 1.83x on AlexNet, ~= 1.43x averaged over the 4 NNs
  (asserted as bands);
* VGG's gain is marginal (memory-bound, homogeneous layers);
* partition loses its conv1 magic over a whole network (it no longer
  tracks the adaptive scheme the way it tracked ideal in Fig. 7);
* adpa-1 == adpa-2 in performance.
"""

from collections import defaultdict

import pytest

from repro.analysis.experiments import fig8_whole_network
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import render_fig8


def run():
    return fig8_whole_network()


def test_fig8(benchmark, report):
    rows = benchmark(run)
    report("Fig. 8 — whole-network performance", render_fig8(rows))

    cycles = defaultdict(dict)
    for r in rows:
        cycles[(r.config, r.network)][r.policy] = r.cycles

    for key, by_policy in cycles.items():
        adaptive = by_policy["adaptive-2"]
        for fixed in ("inter", "intra", "partition"):
            assert adaptive <= 1.10 * by_policy[fixed], (key, fixed)
        # adpa-1 and adpa-2 identical in time
        assert by_policy["adaptive-1"] == pytest.approx(adaptive, rel=1e-9)

    # AlexNet 16-16 headline: paper 1.83x (band 1.4-2.3)
    a = cycles[("16-16", "alexnet")]
    assert 1.4 < a["inter"] / a["adaptive-2"] < 2.3

    # 4-network average vs inter: paper 1.43x (assert > 1.2)
    avg = arithmetic_mean(
        cycles[("16-16", n)]["inter"] / cycles[("16-16", n)]["adaptive-2"]
        for n in ("alexnet", "googlenet", "vgg", "nin")
    )
    assert avg > 1.2

    # VGG: marginal adaptiveness space
    v = cycles[("16-16", "vgg")]
    assert v["inter"] / v["adaptive-2"] < 1.10
