"""Integrity benchmark: ABFT detection, recovery and checksum overhead.

Runs the seeded single-bit-flip sweep (:mod:`repro.integrity.sweep`)
over every (layer, scheme path, buffer site) cell, plus the two
serving-tier SDC chaos scenarios, and reduces both to headline numbers.

Writes ``BENCH_integrity.json``.  The headline asserts the acceptance
claims and the script exits nonzero if any fails:

1. **detection** — ABFT flags at least 99% of injected single bit flips
   that actually corrupt the output (flips masked by unused margins or
   strides are excluded from the denominator);
2. **zero false positives** — no clean (uninjected) run is ever flagged;
3. **bit-identical recovery** — every detect-and-recompute restores the
   golden reference output exactly;
4. **serving drain** — the ``sdc-storm`` scenario detects every corrupted
   batch, escapes none, and drains the corrupting replica;
5. **determinism** — running the sweep twice produces byte-identical
   rollup JSON.

All numbers are modelled accelerator time: reruns are byte-deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_integrity.py [--smoke] [--output BENCH_integrity.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from repro.arch.config import CONFIG_16_16
from repro.integrity import run_sweep, sweep_to_json
from repro.resilience import build_scenario, run_scenario

SEED = 0
CHAOS_SEED = 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_integrity.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced layer/flip grid (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)

    rollup = run_sweep(seed=SEED, smoke=args.smoke, config=CONFIG_16_16)
    deterministic = sweep_to_json(rollup) == sweep_to_json(
        run_sweep(seed=SEED, smoke=args.smoke, config=CONFIG_16_16)
    )
    head = rollup["headline"]

    storm = run_scenario(build_scenario("sdc-storm", seed=CHAOS_SEED))
    integrity = storm["integrity"]
    drained = (
        integrity["escaped_batches"] == 0
        and integrity["corrupted_batches"] > 0
        and all(storm["invariants"].values())
    )

    headline = {
        "detection_rate": head["detection_rate"],
        "detects_99_percent": head["detection_rate"] >= 0.99,
        "false_positives": head["false_positives"],
        "zero_false_positives": head["false_positives"] == 0,
        "recovery_bit_identical": head["recovery_bit_identical"],
        "mean_latency_ratio": head["mean_latency_ratio"],
        "sdc_storm_drains_corrupting_replica": drained,
        "byte_deterministic": deterministic,
    }

    payload = {
        "benchmark": "integrity",
        "generated_by": "benchmarks/bench_integrity.py",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "config": CONFIG_16_16.name,
        "seed": SEED,
        "smoke": args.smoke,
        "sweep": rollup,
        "sdc_storm": {
            "seed": CHAOS_SEED,
            "integrity": integrity,
            "invariants": storm["invariants"],
        },
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"{'site':<12s} {'injected':>8s} {'corrupted':>9s} {'detected':>8s} "
        f"{'escaped':>7s} {'masked':>6s} {'skipped':>7s}"
    )
    for site, t in rollup["sites"].items():
        print(
            f"{site:<12s} {t['injections']:>8d} {t['corrupted']:>9d} "
            f"{t['detected']:>8d} {t['escaped']:>7d} {t['masked']:>6d} "
            f"{t['skipped']:>7d}"
        )
    ratio = head["mean_latency_ratio"]
    overhead = f"{ratio:.3f}x" if ratio else "n/a"
    print(
        f"detection {head['detection_rate']:.1%}, "
        f"{head['false_positives']} false positives, overhead {overhead}"
    )
    ok = True
    if not headline["detects_99_percent"]:
        print(
            f"FAIL: detection rate {head['detection_rate']:.4f} < 0.99",
            file=sys.stderr,
        )
        ok = False
    if not headline["zero_false_positives"]:
        print(
            f"FAIL: {head['false_positives']} clean runs were flagged",
            file=sys.stderr,
        )
        ok = False
    if not headline["recovery_bit_identical"]:
        print(
            "FAIL: a recovered output differed from the golden reference",
            file=sys.stderr,
        )
        ok = False
    if not drained:
        print(
            "FAIL: sdc-storm did not detect/drain the corrupting replica",
            file=sys.stderr,
        )
        ok = False
    if not deterministic:
        print("FAIL: sweep rollup is not byte-deterministic", file=sys.stderr)
        ok = False
    print(f"written to {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
