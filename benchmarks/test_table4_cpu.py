"""Table 4 — accelerator vs CPU (Xeon 2.20 GHz, Caffe-style software).

Paper: adap-16-16 averages 139x and adap-32-32 averages 469x over the CPU
(at 1 GHz).  Our calibrated CPU model lands within 15% of the published
times for AlexNet/VGG/NiN (GoogLeNet's published time carries framework
overheads a GEMM model cannot see — same order of magnitude asserted), and
the speedups sit in the paper's bands: O(100x) and O(200-500x).
"""

from repro.analysis.experiments import table4_cpu_comparison
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import render_table4

PAPER_CPU_MS = {
    "alexnet": 376.50,
    "googlenet": 1418.8,
    "vgg": 10071.71,
    "nin": 553.43,
}


def run():
    return table4_cpu_comparison()


def test_table4(benchmark, report):
    rows = benchmark(run)
    report("Table 4 — performance compared to CPU", render_table4(rows))

    by_net = {r.network: r for r in rows}

    for net in ("alexnet", "vgg", "nin"):
        ours, paper = by_net[net].cpu_ms, PAPER_CPU_MS[net]
        assert abs(ours - paper) / paper < 0.15, net
    g = by_net["googlenet"].cpu_ms
    assert PAPER_CPU_MS["googlenet"] / 2.5 < g < PAPER_CPU_MS["googlenet"] * 2.5

    # speedup bands: paper avg 139x (16-16) and 469x (32-32)
    avg16 = arithmetic_mean(r.speedup16 for r in rows)
    avg32 = arithmetic_mean(r.speedup32 for r in rows)
    assert 60 < avg16 < 300
    assert 150 < avg32 < 900
    for r in rows:
        assert r.speedup32 > r.speedup16, r.network

    # VGG remains the slowest absolute time on the accelerator too
    assert by_net["vgg"].adap16_ms > by_net["googlenet"].adap16_ms
